package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// fakeClock returns an injectable clock that advances a fixed tick per
// call, making every timestamp and duration deterministic.
func fakeClock(tick time.Duration) func() time.Time {
	base := time.Unix(1_000_000, 0)
	n := 0
	return func() time.Time {
		t := base.Add(time.Duration(n) * tick)
		n++
		return t
	}
}

// buildGoldenTrace records a fixed event sequence exercising every event
// shape: instants with args, caller-timed completes, spans, escaping in
// names, and an empty-args event.
func buildGoldenTrace() *Trace {
	clk := fakeClock(time.Millisecond)
	tr := NewTraceWithClock(clk)
	tr.Instant("solver", "peel", PIDSolver, 1, []Arg{
		{"step", 0}, {"matched", 4}, {"reused", 0}, {"min_weight", 7}, {"residual_edges", 12},
	})
	span := tr.StartSpan("engine", "instance 3", PIDEngine, 2)
	tr.Instant("solver", "peel", PIDSolver, 1, []Arg{
		{"step", 1}, {"matched", 4}, {"reused", 3}, {"min_weight", 2}, {"residual_edges", 8},
	})
	span.End([]Arg{{"index", 3}, {"err", 0}})
	start := time.Unix(1_000_000, 0).Add(10 * time.Millisecond)
	tr.Complete("cluster", "xfer 0->2", PIDCluster, 1, start, 1500*time.Microsecond, []Arg{
		{"src", 0}, {"dst", 2}, {"bytes", 65536},
	})
	tr.Complete("cluster", `step "0"`, PIDCluster, 0, start, 4*time.Millisecond, nil)
	return tr
}

// TestTraceGoldenJSON locks the Chrome trace_event serialization to a
// golden file: chrome://tracing compatibility is a wire-format contract,
// and accidental reordering or re-keying must fail loudly. Regenerate
// with `go test ./internal/obs -run TraceGolden -update`.
func TestTraceGoldenJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := buildGoldenTrace().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace JSON drifted from golden file:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestTraceJSONShape decodes the output with encoding/json and checks the
// envelope Chrome requires: a traceEvents array whose entries carry name,
// ph, ts, pid, tid.
func TestTraceJSONShape(t *testing.T) {
	var buf bytes.Buffer
	if err := buildGoldenTrace().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string           `json:"name"`
			Cat  string           `json:"cat"`
			Ph   string           `json:"ph"`
			TS   *int64           `json:"ts"`
			Dur  *int64           `json:"dur"`
			PID  *int64           `json:"pid"`
			TID  *int64           `json:"tid"`
			Args map[string]int64 `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("got %d events, want 5", len(doc.TraceEvents))
	}
	for i, e := range doc.TraceEvents {
		if e.Name == "" || e.Ph == "" || e.TS == nil || e.PID == nil || e.TID == nil {
			t.Errorf("event %d missing required fields: %+v", i, e)
		}
		if e.Ph == "X" && e.Dur == nil {
			t.Errorf("event %d: complete event without dur", i)
		}
	}
	// The span (event index 2 in recording order) measured 2 fake ticks.
	if got := doc.TraceEvents[2]; got.Name != "instance 3" || *got.Dur != 2000 {
		t.Errorf("span event = %+v, want name \"instance 3\" dur 2000", got)
	}
}

// TestTraceLimit checks the capacity bound drops and counts instead of
// growing without bound.
func TestTraceLimit(t *testing.T) {
	tr := NewTraceWithClock(fakeClock(time.Millisecond))
	tr.SetLimit(3)
	for i := 0; i < 10; i++ {
		tr.Instant("c", "e", 1, 1, nil)
	}
	if tr.Len() != 3 {
		t.Errorf("len = %d, want 3", tr.Len())
	}
	if tr.Dropped() != 7 {
		t.Errorf("dropped = %d, want 7", tr.Dropped())
	}
}

// TestTraceConcurrentRecording races recorders against the JSON writer;
// meaningful under -race.
func TestTraceConcurrentRecording(t *testing.T) {
	tr := NewTrace()
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				tr.Instant("c", "e", 1, w, []Arg{{"i", int64(i)}})
				sp := tr.StartSpan("c", "s", 1, w)
				sp.End(nil)
			}
		}(w)
	}
	for i := 0; i < 2; i++ {
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			t.Error(err)
		}
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	if tr.Len() != 4*500*2 {
		t.Errorf("len = %d, want %d", tr.Len(), 4*500*2)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("final trace output is not valid JSON")
	}
}

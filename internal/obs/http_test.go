package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// get fetches a path from the test server and returns the body.
func get(t *testing.T, srv *Server, path string) string {
	t.Helper()
	resp, err := http.Get("http://" + srv.Addr() + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d\n%s", path, resp.StatusCode, body)
	}
	return string(body)
}

// TestServeEndpoint spins up the endpoint on an ephemeral localhost port
// and checks each route serves what the acceptance criteria require:
// solver counters in the snapshot, the expvar envelope, a loadable trace,
// and pprof.
func TestServeEndpoint(t *testing.T) {
	o := New()
	so := o.Solver("OGGP")
	so.Peel(0, 4, 0, 7, 12)
	so.Done(2, 99)
	o.Engine().Batch(1, 1).Done()
	o.Cluster().Step(0, time.Now(), 2*time.Millisecond, time.Millisecond, 1)

	srv, err := Serve(":0", o)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if !strings.HasPrefix(srv.Addr(), "127.0.0.1:") {
		t.Fatalf("bare :port must bind localhost, got %s", srv.Addr())
	}

	metrics := get(t, srv, "/metrics")
	for _, want := range []string{
		"# TYPE redist_solver_peels_total_OGGP counter",
		"redist_solver_peels_total_OGGP 1",
		"redist_solver_solves_total_OGGP 1",
		"redist_engine_batches_total 1",
		"redist_cluster_steps_total 1",
		"redist_cluster_step_ratio_pct_last 200",
		`redist_solver_solve_us_OGGP_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}
	if err := ValidatePrometheus(metrics); err != nil {
		t.Errorf("/metrics is not valid Prometheus text format: %v", err)
	}

	plain := get(t, srv, "/metrics.txt")
	for _, want := range []string{
		"solver.peels_total.OGGP 1",
		"solver.solves_total.OGGP 1",
		"engine.batches_total 1",
		"cluster.steps_total 1",
		"cluster.step_ratio_pct_last 200",
	} {
		if !strings.Contains(plain, want) {
			t.Errorf("/metrics.txt missing %q:\n%s", want, plain)
		}
	}

	var snap Snapshot
	if err := json.Unmarshal([]byte(get(t, srv, "/metrics.json")), &snap); err != nil {
		t.Fatalf("/metrics.json: %v", err)
	}
	if snap.Counters["solver.peels_total.OGGP"] != 1 {
		t.Errorf("/metrics.json counters = %v", snap.Counters)
	}

	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(get(t, srv, "/debug/vars")), &vars); err != nil {
		t.Fatalf("/debug/vars: %v", err)
	}
	if _, ok := vars["redistgo"]; !ok {
		t.Error("/debug/vars does not publish the redistgo snapshot")
	}

	if body := get(t, srv, "/debug/trace"); !json.Valid([]byte(body)) || !strings.Contains(body, "traceEvents") {
		t.Errorf("/debug/trace is not a trace_event document:\n%.200s", body)
	}
	if body := get(t, srv, "/debug/pprof/cmdline"); body == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
	if body := get(t, srv, "/"); !strings.Contains(body, "/metrics") {
		t.Errorf("index page missing route list:\n%s", body)
	}
}

// TestServeTwice re-serves with a fresh observer: the expvar publication
// must follow the most recent registry instead of panicking on duplicate
// registration.
func TestServeTwice(t *testing.T) {
	first := New()
	srv1, err := Serve(":0", first)
	if err != nil {
		t.Fatal(err)
	}
	srv1.Close()

	second := New()
	second.Reg().Counter("marker").Add(42)
	srv2, err := Serve(":0", second)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if body := get(t, srv2, "/debug/vars"); !strings.Contains(body, "marker") {
		t.Error("expvar snapshot did not switch to the new registry")
	}
}

// TestServeNilObserver pins the error path.
func TestServeNilObserver(t *testing.T) {
	if _, err := Serve(":0", nil); err == nil {
		t.Fatal("Serve(nil) must fail")
	}
}

// TestServeProbes pins the health endpoints: /healthz is always 200,
// /readyz follows SetReady.
func TestServeProbes(t *testing.T) {
	srv, err := Serve(":0", New())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if body := get(t, srv, "/healthz"); !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %q", body)
	}
	status := func(path string) int {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := status("/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("/readyz before SetReady = %d, want 503", got)
	}
	srv.SetReady(true)
	if got := status("/readyz"); got != http.StatusOK {
		t.Errorf("/readyz after SetReady(true) = %d, want 200", got)
	}
	srv.SetReady(false)
	if got := status("/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("/readyz after SetReady(false) = %d, want 503", got)
	}
}

// TestServeCloseIdempotent starts an endpoint, scrapes it, then races many
// concurrent Close calls against in-flight scrapes, and finally verifies
// no server goroutine survives — the leak check the obs.Server never had.
func TestServeCloseIdempotent(t *testing.T) {
	before := runtime.NumGoroutine()

	o := New()
	o.Reg().Counter("x").Inc()
	srv, err := Serve(":0", o)
	if err != nil {
		t.Fatal(err)
	}
	_ = get(t, srv, "/metrics")

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Half the goroutines scrape while the other half close; errors
			// are expected once the listener is gone — the point is no panic,
			// no double-close fault, no hang.
			if resp, err := http.Get("http://" + srv.Addr() + "/metrics"); err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			if err := srv.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		}()
	}
	wg.Wait()
	if err := srv.Close(); err != nil {
		t.Errorf("Close after Close: %v", err)
	}

	// The accept loop and handler goroutines must drain. Allow a grace
	// period: goroutine teardown is asynchronous.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after close", before, runtime.NumGoroutine())
}

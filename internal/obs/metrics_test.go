package obs

import (
	"sync"
	"testing"
	"time"
)

// TestConcurrentUpdates hammers one counter, gauge and histogram from
// many goroutines; under `go test -race` this proves the update paths are
// race-clean, and the totals prove no update is lost.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []int64{10, 100, 1000})
	const workers, per = 8, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(i % 2000))
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := g.Value(); got != workers*per {
		t.Errorf("gauge = %d, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
	var bucketSum int64
	for _, n := range h.snapshot() {
		bucketSum += n
	}
	if bucketSum != workers*per {
		t.Errorf("histogram buckets sum to %d, want %d", bucketSum, workers*per)
	}
}

// TestConcurrentRegistryLookups races handle resolution against updates
// and snapshots; idempotence means every goroutine must get the same
// handle.
func TestConcurrentRegistryLookups(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("shared").Inc()
				r.Gauge("shared").Set(int64(i))
				r.Histogram("shared", SizeBuckets).Observe(int64(i))
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8*1000 {
		t.Errorf("shared counter = %d, want %d", got, 8*1000)
	}
}

// TestNilSafety walks every nil-receiver path: nil registry, nil handles,
// nil observer views. None may panic, and reads return zeros.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x", SizeBuckets)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	c.Add(3)
	c.Inc()
	g.Set(1)
	g.Add(1)
	h.Observe(9)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil handles must read as zero")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Error("nil registry snapshot must be empty")
	}

	var o *Observer
	if o.Reg() != nil {
		t.Error("nil observer must expose a nil registry")
	}
	so := o.Solver("GGP")
	so.Peel(0, 4, 2, 1, 10)
	so.Done(3, 100)
	eo := o.Engine()
	bo := eo.Batch(5, 2)
	sp := bo.Instance(0, 0)
	sp.Done(nil)
	bo.Skip()
	bo.Done()
	co := o.Cluster()
	co.Step(0, time.Time{}, 0, 0, 1)
	co.Transfer(0, 1, 64, time.Time{}, 0)

	var tr *Trace
	tr.Instant("c", "n", 1, 1, nil)
	tr.Complete("c", "n", 1, 1, time.Time{}, 0, nil)
	tr.StartSpan("c", "n", 1, 1).End(nil)
	tr.SetLimit(1)
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Error("nil trace must read as empty")
	}
}

// TestHistogramBucketing pins the bucket-selection arithmetic: values land
// in the first bucket whose bound is >= v, overflow in the last.
func TestHistogramBucketing(t *testing.T) {
	h := newHistogram([]int64{10, 100})
	for _, v := range []int64{0, 10, 11, 100, 101, 1 << 40} {
		h.Observe(v)
	}
	want := []int64{2, 2, 2} // {0,10}, {11,100}, {101, 2^40}
	got := h.snapshot()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Sum() != 0+10+11+100+101+1<<40 {
		t.Errorf("sum = %d", h.Sum())
	}
}

// TestUpdatePathsDoNotAllocate is the satellite's AllocsPerRun guard: the
// disabled (nil-handle) path and the enabled counter/gauge/histogram
// update path must both be allocation-free, or threading observability
// through the solver would break its zero-alloc steady state.
func TestUpdatePathsDoNotAllocate(t *testing.T) {
	var nc *Counter
	var ng *Gauge
	var nh *Histogram
	if avg := testing.AllocsPerRun(100, func() {
		nc.Add(1)
		ng.Set(2)
		nh.Observe(3)
	}); avg != 0 {
		t.Errorf("nil no-op path allocates %.1f/run, want 0", avg)
	}

	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", DurationBuckets)
	if avg := testing.AllocsPerRun(100, func() {
		c.Add(1)
		g.Set(2)
		h.Observe(3)
	}); avg != 0 {
		t.Errorf("enabled update path allocates %.1f/run, want 0", avg)
	}
}

// TestSnapshotDeterministic asserts two snapshots of the same state
// render identically (sorted names), which the /metrics endpoint and the
// golden tests rely on.
func TestSnapshotDeterministic(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"z", "a", "m"} {
		r.Counter("counter." + name).Add(1)
		r.Gauge("gauge." + name).Set(2)
		r.Histogram("hist."+name, SizeBuckets).Observe(3)
	}
	a, b := r.Snapshot().String(), r.Snapshot().String()
	if a != b {
		t.Fatalf("snapshots differ:\n%s\nvs\n%s", a, b)
	}
	if a == "" {
		t.Fatal("empty snapshot")
	}
}

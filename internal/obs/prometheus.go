package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file renders an Observer in the Prometheus text exposition format,
// version 0.0.4, with no dependency beyond the standard library.
//
// Name mapping: registry names are dotted ("solver.shard.solves_total.OGGP");
// Prometheus names are [a-zA-Z_:][a-zA-Z0-9_:]*. Every exported name is
// "redist_" + the registry name with each invalid rune mapped to '_', so
// solver.shard.* becomes redist_solver_shard_*. The mapping is documented
// in DESIGN.md §12 and pinned by TestPromName.
//
// Cardinality: registry metrics are unlabeled. The only labeled series are
// the per-tenant SLO views, whose label values come from the bounded LRU
// in tenant.go — the exposition can never grow past tenantCap tenants.

// promQuantiles are the summary quantiles exported per histogram.
var promQuantiles = []float64{0.5, 0.95, 0.99}

// promName maps a registry metric name to its Prometheus name.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 7)
	b.WriteString("redist_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// writeHistogram emits one histogram family (TYPE line, cumulative
// buckets, sum, count) followed by its quantile summary family. labels is
// either empty or a rendered label set like `tenant="3"`.
func writeHistogram(w *bufio.Writer, name, labels string, h HistogramSnapshot) {
	sep := func(extra string) string {
		switch {
		case labels == "" && extra == "":
			return ""
		case labels == "":
			return "{" + extra + "}"
		case extra == "":
			return "{" + labels + "}"
		default:
			return "{" + labels + "," + extra + "}"
		}
	}
	var cum int64
	for i, c := range h.Buckets {
		cum += c
		le := "+Inf"
		if i < len(h.Bounds) {
			le = strconv.FormatInt(h.Bounds[i], 10)
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, sep(`le="`+le+`"`), cum)
	}
	fmt.Fprintf(w, "%s_sum%s %d\n", name, sep(""), h.Sum)
	fmt.Fprintf(w, "%s_count%s %d\n", name, sep(""), h.Count)
}

// writeSummary emits the quantile companion family for a histogram,
// estimated by linear interpolation (see Histogram.Quantile).
func writeSummary(w *bufio.Writer, name, labels string, h HistogramSnapshot) {
	for _, q := range promQuantiles {
		lq := `quantile="` + strconv.FormatFloat(q, 'g', -1, 64) + `"`
		if labels != "" {
			lq = labels + "," + lq
		}
		fmt.Fprintf(w, "%s{%s} %d\n", name, lq, h.Quantile(q))
	}
	if labels != "" {
		labels = "{" + labels + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %d\n", name, labels, h.Sum)
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.Count)
}

// WritePrometheus renders o's registry and per-tenant SLO views as
// Prometheus text format 0.0.4. A nil observer renders an empty (but
// valid) exposition. Output is deterministic: families sorted by name,
// tenants by id.
func WritePrometheus(w io.Writer, o *Observer) error {
	bw := bufio.NewWriter(w)
	if o != nil {
		snap := o.Metrics.Snapshot()

		names := make([]string, 0, len(snap.Counters))
		for n := range snap.Counters {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			pn := promName(n)
			fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", pn, pn, snap.Counters[n])
		}

		names = names[:0]
		for n := range snap.Gauges {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			pn := promName(n)
			fmt.Fprintf(bw, "# TYPE %s gauge\n%s %d\n", pn, pn, snap.Gauges[n])
		}

		for _, h := range snap.Histograms {
			pn := promName(h.Name)
			fmt.Fprintf(bw, "# TYPE %s histogram\n", pn)
			writeHistogram(bw, pn, "", h)
			fmt.Fprintf(bw, "# TYPE %s_summary summary\n", pn)
			writeSummary(bw, pn+"_summary", "", h)
		}

		if tenants := o.TenantSLO().Snapshot(); len(tenants) > 0 {
			writeTenants(bw, tenants)
		}
	}
	return bw.Flush()
}

// writeTenants emits the labeled per-tenant families. Each family's TYPE
// line appears once, followed by one series per tenant.
func writeTenants(w *bufio.Writer, tenants []TenantSnapshot) {
	label := func(t TenantSnapshot) string { return `tenant="` + strconv.Itoa(t.Tenant) + `"` }

	for _, c := range []struct {
		name string
		get  func(TenantSnapshot) int64
	}{
		{"redist_tenant_requests_total", func(t TenantSnapshot) int64 { return t.Requests }},
		{"redist_tenant_responses_total", func(t TenantSnapshot) int64 { return t.Responses }},
		{"redist_tenant_rejects_total", func(t TenantSnapshot) int64 { return t.Rejects }},
	} {
		fmt.Fprintf(w, "# TYPE %s counter\n", c.name)
		for _, t := range tenants {
			fmt.Fprintf(w, "%s{%s} %d\n", c.name, label(t), c.get(t))
		}
	}

	for _, hf := range []struct {
		name string
		get  func(TenantSnapshot) HistogramSnapshot
	}{
		{"redist_tenant_queue_wait_us", func(t TenantSnapshot) HistogramSnapshot { return t.QueueWaitUS }},
		{"redist_tenant_solve_us", func(t TenantSnapshot) HistogramSnapshot { return t.SolveUS }},
	} {
		fmt.Fprintf(w, "# TYPE %s histogram\n", hf.name)
		for _, t := range tenants {
			writeHistogram(w, hf.name, label(t), hf.get(t))
		}
		fmt.Fprintf(w, "# TYPE %s_summary summary\n", hf.name)
		for _, t := range tenants {
			writeSummary(w, hf.name+"_summary", label(t), hf.get(t))
		}
	}
}

// ValidatePrometheus checks that data parses as Prometheus text format
// 0.0.4: every line is a comment, blank, or `name[{labels}] value`; TYPE
// comments are well-formed and precede their family's samples; histogram
// families end their buckets with le="+Inf". It returns the first
// violation found. The soak smoke target runs every /metrics scrape
// through it.
func ValidatePrometheus(data string) error {
	types := map[string]string{}
	for ln, line := range strings.Split(data, "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: malformed TYPE comment %q", lineNo, line)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q", lineNo, fields[3])
				}
				types[fields[2]] = fields[3]
			}
			continue
		}
		name, rest := line, ""
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name, rest = line[:i], line[i:]
		}
		if !validMetricName(name) {
			return fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
		}
		if strings.HasPrefix(rest, "{") {
			end := strings.Index(rest, "}")
			if end < 0 {
				return fmt.Errorf("line %d: unterminated label set", lineNo)
			}
			if err := validLabels(rest[1:end]); err != nil {
				return fmt.Errorf("line %d: %v", lineNo, err)
			}
			rest = rest[end+1:]
		}
		val := strings.TrimSpace(rest)
		if i := strings.IndexByte(val, ' '); i >= 0 {
			// Optional trailing timestamp.
			if _, err := strconv.ParseInt(val[i+1:], 10, 64); err != nil {
				return fmt.Errorf("line %d: bad timestamp %q", lineNo, val[i+1:])
			}
			val = val[:i]
		}
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			return fmt.Errorf("line %d: bad sample value %q", lineNo, val)
		}
		// Samples of a TYPEd histogram family must use the family suffixes.
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if t, ok := types[base]; ok && t == "histogram" && name == base {
			return fmt.Errorf("line %d: histogram family %q sampled without _bucket/_sum/_count", lineNo, base)
		}
	}
	return nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabels(s string) error {
	for _, pair := range strings.Split(s, ",") {
		eq := strings.IndexByte(pair, '=')
		if eq < 0 {
			return fmt.Errorf("label %q missing '='", pair)
		}
		if !validMetricName(pair[:eq]) || strings.ContainsRune(pair[:eq], ':') {
			return fmt.Errorf("invalid label name %q", pair[:eq])
		}
		v := pair[eq+1:]
		if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
			return fmt.Errorf("label value %q not quoted", v)
		}
	}
	return nil
}

package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"sync/atomic"
)

// Server is a running introspection endpoint. Close releases the
// listener; in-flight requests are abandoned (the endpoint is a debug
// surface, not a service).
type Server struct {
	ln    net.Listener
	srv   *http.Server
	ready atomic.Bool

	closeOnce sync.Once
	closeErr  error
}

// Addr returns the bound address, e.g. "127.0.0.1:6060".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// SetReady flips what /readyz reports. Servers start not-ready; the
// daemon marks itself ready once its accept loop is up and not-ready
// again when shutdown begins, so a load balancer drains before the
// listener disappears.
func (s *Server) SetReady(ok bool) {
	if s == nil {
		return
	}
	s.ready.Store(ok)
}

// Close shuts the endpoint down. Idempotent and safe to call from
// multiple goroutines concurrently — also concurrently with in-flight
// handlers, which http.Server.Close abandons.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.ready.Store(false)
		s.closeErr = s.srv.Close()
	})
	return s.closeErr
}

// published is the registry expvar reads from. expvar.Publish is global
// and panics on re-registration, so the "redistgo" var is published once
// and indirects through this pointer; the most recent Serve call wins
// (one endpoint per process is the intended shape, tests spin up more).
var (
	published   atomic.Pointer[Registry]
	publishOnce sync.Once
)

// Serve starts the introspection endpoint on addr and returns
// immediately. A bare ":port" binds 127.0.0.1 — the endpoint exposes
// pprof and internal counters, so reaching it from another host must be
// an explicit decision (pass a full host:port to opt in).
//
// Routes:
//
//	/              plain-text index
//	/metrics       Prometheus text exposition format 0.0.4
//	/metrics.txt   registry snapshot, sorted "name value" lines
//	/metrics.json  registry snapshot as JSON
//	/healthz       liveness: 200 while the process serves requests
//	/readyz        readiness: 200 only after SetReady(true)
//	/debug/vars    standard expvar (memstats, cmdline) + "redistgo"
//	/debug/trace   the trace so far, Chrome trace_event JSON
//	/debug/pprof/  the standard pprof handlers
func Serve(addr string, o *Observer) (*Server, error) {
	if o == nil {
		return nil, fmt.Errorf("obs: cannot serve a nil observer")
	}
	if strings.HasPrefix(addr, ":") {
		addr = "127.0.0.1" + addr
	}
	published.Store(o.Metrics)
	publishOnce.Do(func() {
		expvar.Publish("redistgo", expvar.Func(func() any {
			return published.Load().Snapshot()
		}))
	})

	s := &Server{}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "redistgo observability endpoint\n\n"+
			"/metrics       Prometheus text format (with per-tenant SLO series)\n"+
			"/metrics.txt   counters and gauges, plain text\n"+
			"/metrics.json  full snapshot with histograms, JSON\n"+
			"/healthz       liveness probe\n"+
			"/readyz        readiness probe\n"+
			"/debug/vars    expvar (includes the redistgo snapshot)\n"+
			"/debug/trace   Chrome trace_event JSON (load in chrome://tracing)\n"+
			"/debug/pprof/  pprof profiles\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, o) // client went away; nothing to report to
	})
	mux.HandleFunc("/metrics.txt", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, o.Metrics.Snapshot().String())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		if !s.ready.Load() {
			http.Error(w, "not ready", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		writeSnapshotJSON(w, o.Metrics.Snapshot())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="trace.json"`)
		_ = o.Trace.WriteJSON(w) // client went away; nothing to report to
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s.ln, s.srv = ln, &http.Server{Handler: mux}
	go func() {
		_ = s.srv.Serve(ln) // returns http.ErrServerClosed on Close
	}()
	return s, nil
}

// writeSnapshotJSON encodes the snapshot; an encode failure mid-response
// has no useful recovery, so it is reported as a trailing HTTP error only
// when nothing was written yet.
func writeSnapshotJSON(w http.ResponseWriter, s Snapshot) {
	if err := json.NewEncoder(w).Encode(s); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

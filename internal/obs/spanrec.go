package obs

import (
	"sync/atomic"
	"time"
)

// Phase labels one stage of a request's life inside the serving path. A
// request passes through the phases in declaration order; Mark stamps the
// moment a phase begins and the previous phase implicitly ends there.
type Phase uint8

const (
	PhaseRead   Phase = iota // blocking frame read on the session
	PhaseAdmit               // decode + admission control
	PhaseQueue               // waiting in the solver pool's queue
	PhaseSolve               // the solve itself
	PhaseEncode              // response encoding
	PhaseWrite               // response frame write
	numPhases
)

// phaseNames are the trace-event names, indexed by Phase.
var phaseNames = [numPhases]string{"read", "admit", "queue", "solve", "encode", "write"}

// Request outcomes recorded by (*ReqRec).Finish.
const (
	OutcomeOK     = 0 // answered with a schedule
	OutcomeReject = 1 // refused with a reject code
	OutcomeError  = 2 // failed (solve error, write error)
)

// spanRingSize bounds the number of in-flight request records. Slots are
// claimed by a single CAS; a request that collides with a still-open slot
// is dropped and counted, never blocked on.
const spanRingSize = 1024

// SpanRecorder turns the serving path's per-request phase marks into
// nested Chrome trace_event spans. It is the request-scoped counterpart of
// the aggregate views in observer.go: Begin claims a pre-allocated record
// from a fixed ring (one CAS, no allocation, no lock), Mark stamps phase
// boundaries, and Finish — the only emitting call, once per request —
// renders the record as one outer "request" span with its phases nested
// inside on the session's lane (pid PIDRequest, tid session).
//
// A nil *SpanRecorder hands out nil records, and every method on a nil
// *ReqRec is an allocation-free no-op, preserving the package's hotpath
// contract. tools/redistlint bars SpanRecorder lookups (Begin included)
// inside //redistlint:hotpath functions, same as Registry and Observer.
type SpanRecorder struct {
	tr       *Trace
	now      func() time.Time
	next     atomic.Uint64
	slots    []ReqRec
	finished *Counter
	dropped  *Counter
}

// newSpanRecorder builds a recorder emitting into tr, sharing its clock so
// request spans line up with every other lane in the trace.
func newSpanRecorder(tr *Trace, reg *Registry) *SpanRecorder {
	r := &SpanRecorder{
		tr:       tr,
		now:      time.Now,
		finished: reg.Counter("spans.finished_total"),
		dropped:  reg.Counter("spans.dropped_total"),
	}
	if tr != nil && tr.now != nil {
		r.now = tr.now
	}
	r.slots = make([]ReqRec, spanRingSize)
	for i := range r.slots {
		r.slots[i].rec = r
	}
	return r
}

// Spans returns the request span recorder, created on first use. Nil
// receiver → nil recorder.
func (o *Observer) Spans() *SpanRecorder {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.spans == nil {
		o.spans = newSpanRecorder(o.Trace, o.Metrics)
	}
	return o.spans
}

// Begin claims a record for one request on the given session lane and
// stamps its start (which doubles as the PhaseRead mark). Returns nil —
// and counts a drop — if the ring slot is still held by a request begun
// spanRingSize requests ago. Nil receiver → nil record.
func (r *SpanRecorder) Begin(session int) *ReqRec {
	if r == nil {
		return nil
	}
	q := &r.slots[r.next.Add(1)%spanRingSize]
	if !q.inUse.CompareAndSwap(false, true) {
		r.dropped.Inc()
		return nil
	}
	q.session = int32(session)
	q.tenant = -1
	q.traceID = [16]byte{}
	q.marks = [numPhases]time.Time{}
	q.start = r.now()
	q.marks[PhaseRead] = q.start
	return q
}

// ReqRec is the in-flight record of one request. All methods are no-ops on
// a nil record and none of them allocates; only Finish emits.
type ReqRec struct {
	rec     *SpanRecorder
	inUse   atomic.Bool
	session int32
	tenant  int32
	traceID [16]byte
	start   time.Time
	marks   [numPhases]time.Time
}

// Mark stamps the beginning of phase p at the recorder's clock.
func (q *ReqRec) Mark(p Phase) {
	if q == nil || p >= numPhases {
		return
	}
	q.marks[p] = q.rec.now()
}

// MarkAfter stamps phase p at phase base's mark plus d. It covers the one
// boundary the session goroutine never witnesses directly: the pool
// worker claims the job (queue→solve) on its own goroutine and reports
// the wait as a duration, so the solve phase starts at queue-mark + wait.
func (q *ReqRec) MarkAfter(p, base Phase, d time.Duration) {
	if q == nil || p >= numPhases || base >= numPhases || q.marks[base].IsZero() {
		return
	}
	q.marks[p] = q.marks[base].Add(d)
}

// SetTenant records the tenant (frame Src) the request belongs to.
func (q *ReqRec) SetTenant(t int) {
	if q == nil {
		return
	}
	q.tenant = int32(t)
}

// SetTrace records the client's 16-byte trace id; it is surfaced on the
// finished span's args so a trace id seen in a log line can be located on
// the timeline.
func (q *ReqRec) SetTrace(id [16]byte) {
	if q == nil {
		return
	}
	q.traceID = id
}

// Drop releases the record without emitting anything — the frame turned
// out not to be a solve request, or the session died mid-read.
func (q *ReqRec) Drop() {
	if q == nil {
		return
	}
	q.inUse.Store(false)
}

// Finish closes the record: it emits the outer request span plus one
// nested span per marked phase (each phase ends where the next marked one
// begins; the last ends now), then releases the slot. The emitting path
// may allocate — it runs once per request, off the per-peel hotpath.
func (q *ReqRec) Finish(outcome int64) {
	if q == nil {
		return
	}
	r := q.rec
	end := r.now()
	tid := int(q.session)
	// traceLo is the low 8 bytes of the trace id, enough to correlate a
	// span with a log line without string args.
	var traceLo int64
	for i := 8; i < 16; i++ {
		traceLo = traceLo<<8 | int64(q.traceID[i])
	}
	r.tr.Complete("request", "request", PIDRequest, tid, q.start, end.Sub(q.start), []Arg{
		{"tenant", int64(q.tenant)},
		{"outcome", outcome},
		{"trace_lo", traceLo},
	})
	for p := Phase(0); p < numPhases; p++ {
		at := q.marks[p]
		if at.IsZero() {
			continue
		}
		stop := end
		for n := p + 1; n < numPhases; n++ {
			if !q.marks[n].IsZero() {
				stop = q.marks[n]
				break
			}
		}
		r.tr.Complete("request", phaseNames[p], PIDRequest, tid, at, stop.Sub(at), nil)
	}
	r.finished.Inc()
	q.inUse.Store(false)
}

// Package obs is redistgo's dependency-free observability layer: atomic
// counters, gauges and fixed-bucket histograms behind a nil-safe Registry,
// a structured trace recorder that renders as a timeline in
// chrome://tracing, and an opt-in expvar+pprof introspection endpoint.
//
// The package is built around two contracts:
//
//   - Nil safety. A nil *Registry hands out nil metric handles, and every
//     method on a nil handle (Counter, Gauge, Histogram, Trace, the
//     subsystem views in observer.go) is a no-op. Instrumented code
//     therefore carries no "is observability on?" branching, and the
//     //redistlint:hotpath zero-allocation contract of the peeling engine
//     holds unchanged when observation is disabled.
//   - Passivity. Recording never influences what is being recorded: the
//     solver produces byte-identical schedules with tracing on or off
//     (asserted by TestSolveObsDeterminism and the FuzzSolve differential
//     check), and metric updates are single atomic operations that never
//     allocate (asserted by AllocsPerRun tests).
//
// Handles are resolved by name from a Registry once, outside hot loops —
// the lookup takes a mutex and may allocate; the update path never does.
// tools/redistlint's hotpath analyzer enforces the split statically: a
// //redistlint:hotpath function may call handle methods but not Registry
// or Observer lookups.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil *Counter discards updates.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d. No-op on a nil counter.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count, 0 for a nil counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. The zero value is ready to use;
// a nil *Gauge discards updates.
type Gauge struct {
	v atomic.Int64
}

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by d (negative deltas allowed). No-op on nil.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value returns the current value, 0 for a nil gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram over int64 observations: bucket i
// counts observations v ≤ bounds[i], the last bucket is the +Inf
// overflow. Bounds are set at registration and never change, so Observe
// is a binary search plus one atomic add — no allocation, safe for
// concurrent use. A nil *Histogram discards observations.
type Histogram struct {
	bounds  []int64
	buckets []atomic.Int64 // len(bounds)+1, last is +Inf
	count   atomic.Int64
	sum     atomic.Int64
}

// newHistogram builds a histogram with the given strictly increasing
// upper bounds.
func newHistogram(bounds []int64) *Histogram {
	b := make([]int64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
}

// NewHistogram builds a standalone histogram with the given strictly
// increasing upper bounds, not attached to any Registry. Per-tenant SLO
// slots use these so that tenant cardinality never leaks into registry
// metric names (the tenant id becomes a Prometheus label instead).
func NewHistogram(bounds []int64) *Histogram { return newHistogram(bounds) }

// Observe records one value. No-op on a nil histogram.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v; the overflow bucket catches
	// everything beyond the last bound.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.buckets[lo].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations, 0 for a nil histogram.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations, 0 for a nil histogram.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// snapshot copies the bucket counts (index i ≤ bounds[i]; last is +Inf).
func (h *Histogram) snapshot() []int64 {
	out := make([]int64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the observed values by
// linear interpolation inside the bucket containing the target rank.
// Bucket i spans (bounds[i-1], bounds[i]] with a lower edge of 0 for the
// first bucket; ranks landing in the +Inf overflow bucket clamp to the
// last finite bound. Returns 0 for a nil or empty histogram. The estimate
// is read from a racy multi-word snapshot, which is fine for monitoring.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	return quantile(q, h.bounds, h.snapshot())
}

// Quantile estimates the q-quantile of a frozen histogram; see
// (*Histogram).Quantile for the interpolation rules.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	return quantile(q, s.Bounds, s.Buckets)
}

func quantile(q float64, bounds []int64, buckets []int64) int64 {
	var total int64
	for _, c := range buckets {
		total += c
	}
	if total == 0 || len(bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the target observation under the usual
	// nearest-rank-with-interpolation convention.
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	var seen float64
	for i, c := range buckets {
		if c == 0 {
			continue
		}
		if seen+float64(c) < rank {
			seen += float64(c)
			continue
		}
		if i >= len(bounds) {
			// +Inf overflow bucket: no upper edge to interpolate toward.
			return bounds[len(bounds)-1]
		}
		lo := int64(0)
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := bounds[i]
		frac := (rank - seen) / float64(c)
		return lo + int64(frac*float64(hi-lo))
	}
	return bounds[len(bounds)-1]
}

// Registry names and owns the metrics of one process (or one test). All
// lookups are idempotent — the first registration of a name wins and
// later lookups return the same handle — and safe for concurrent use. A
// nil *Registry returns nil handles, turning every downstream update into
// a no-op.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on first
// use. Nil receiver → nil handle.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. Nil receiver → nil handle.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given strictly increasing upper bounds on first use (later bounds
// are ignored — the first registration wins). Nil receiver → nil handle.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// DurationBuckets are the default histogram bounds for microsecond
// latencies: 10µs to ~100s, roughly ×3 per bucket.
var DurationBuckets = []int64{
	10, 30, 100, 300, 1_000, 3_000, 10_000, 30_000,
	100_000, 300_000, 1_000_000, 3_000_000, 10_000_000, 30_000_000, 100_000_000,
}

// SizeBuckets are the default histogram bounds for cardinalities
// (matching sizes, step widths): powers of two from 1 to 64k.
var SizeBuckets = []int64{
	1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536,
}

// RatioBuckets are the default histogram bounds for percent ratios
// (actual/predicted·100): under-prediction below 100, skew above.
var RatioBuckets = []int64{
	25, 50, 75, 90, 100, 110, 125, 150, 200, 300, 500, 1000,
}

// HistogramSnapshot is the frozen state of one histogram.
type HistogramSnapshot struct {
	Name    string  `json:"name"`
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	Bounds  []int64 `json:"bounds"`  // upper bounds, one per bucket
	Buckets []int64 `json:"buckets"` // len(Bounds)+1; last is +Inf
}

// Snapshot is a frozen, deterministically ordered view of a registry,
// ready for JSON encoding (the introspection endpoint serves it) or for
// test assertions.
type Snapshot struct {
	Counters   map[string]int64    `json:"counters"`
	Gauges     map[string]int64    `json:"gauges"`
	Histograms []HistogramSnapshot `json:"histograms"`
}

// Snapshot captures the current value of every metric. Histograms are
// sorted by name; the counter and gauge maps serialize deterministically
// because encoding/json sorts map keys. A nil registry yields an empty
// snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{Counters: map[string]int64{}, Gauges: map[string]int64{}}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms = append(s.Histograms, HistogramSnapshot{
			Name:    name,
			Count:   h.Count(),
			Sum:     h.Sum(),
			Bounds:  h.bounds,
			Buckets: h.snapshot(),
		})
	}
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// String renders the snapshot as sorted "name value" lines — the
// plain-text format served at /metrics.
func (s Snapshot) String() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "%s %d\n", name, s.Counters[name])
	}
	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "%s %d\n", name, s.Gauges[name])
	}
	for _, h := range s.Histograms {
		fmt.Fprintf(&b, "%s_count %d\n%s_sum %d\n", h.Name, h.Count, h.Name, h.Sum)
	}
	return b.String()
}

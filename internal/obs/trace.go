package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"strconv"
	"sync"
	"time"
)

// Trace process ids: chrome://tracing groups timeline lanes by (pid, tid),
// so each subsystem gets its own process row and its lanes (solver ids,
// engine workers, cluster senders) become threads inside it.
const (
	PIDSolver  = 1
	PIDEngine  = 2
	PIDCluster = 3
	PIDServe   = 4
	PIDRequest = 5
)

// Arg is one key/value annotation on a trace event. Values are int64 so
// recording an event never routes through interface boxing, and the
// serialized order is the emission order — deterministic, unlike a map.
type Arg struct {
	Key string
	Val int64
}

// Event is one Chrome trace_event record. Phase 'X' is a complete event
// (TS..TS+Dur), phase 'i' an instant marker.
type Event struct {
	Name string
	Cat  string
	Ph   byte
	TS   int64 // µs since the trace started
	Dur  int64 // µs, complete events only
	PID  int32
	TID  int32
	Args []Arg
}

// Trace is an append-only, bounded, concurrency-safe event recorder. A
// nil *Trace discards everything. Create with NewTrace; the capacity
// bound keeps a long experiment sweep from holding an unbounded event
// backlog (drops are counted, not silent — see Dropped).
type Trace struct {
	mu      sync.Mutex
	now     func() time.Time
	start   time.Time
	events  []Event
	max     int
	dropped int64
}

// defaultMaxEvents bounds an un-configured trace to roughly 100 MB of
// events; past it new events are dropped and counted.
const defaultMaxEvents = 1 << 20

// NewTrace returns an empty trace using the wall clock, bounded to
// defaultMaxEvents events.
func NewTrace() *Trace { return NewTraceWithClock(time.Now) }

// NewTraceWithClock is NewTrace with an injected clock, for deterministic
// tests (the golden-file test feeds a fake clock).
func NewTraceWithClock(now func() time.Time) *Trace {
	return &Trace{now: now, start: now(), max: defaultMaxEvents}
}

// SetLimit replaces the event-capacity bound; n ≤ 0 means unbounded.
func (t *Trace) SetLimit(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.max = n
}

// Len returns the number of recorded events.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns how many events were discarded at the capacity bound.
func (t *Trace) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// sinceStart converts an absolute time to trace-relative microseconds.
func (t *Trace) sinceStart(at time.Time) int64 {
	return at.Sub(t.start).Microseconds()
}

// append records e, enforcing the capacity bound. Callers must not hold
// t.mu.
func (t *Trace) append(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.max > 0 && len(t.events) >= t.max {
		t.dropped++
		return
	}
	t.events = append(t.events, e)
}

// Instant records an instant event stamped with the current clock.
// No-op on a nil trace.
func (t *Trace) Instant(cat, name string, pid, tid int, args []Arg) {
	if t == nil {
		return
	}
	t.append(Event{Name: name, Cat: cat, Ph: 'i', TS: t.sinceStart(t.now()), PID: int32(pid), TID: int32(tid), Args: args})
}

// Complete records a complete ('X') event for an interval the caller
// timed itself. No-op on a nil trace.
func (t *Trace) Complete(cat, name string, pid, tid int, start time.Time, dur time.Duration, args []Arg) {
	if t == nil {
		return
	}
	t.append(Event{Name: name, Cat: cat, Ph: 'X', TS: t.sinceStart(start), Dur: dur.Microseconds(), PID: int32(pid), TID: int32(tid), Args: args})
}

// Span is an in-flight complete event: created by StartSpan, finished by
// End. It carries the trace's clock internally so instrumented packages
// (the engine above all, whose determinism lint forbids time.Now) never
// read the clock themselves. The zero Span — what a nil trace hands out —
// ends as a no-op.
type Span struct {
	t        *Trace
	cat, nm  string
	pid, tid int32
	start    time.Time
}

// StartSpan opens a complete event at the current clock. Usable on a nil
// trace (End will discard).
func (t *Trace) StartSpan(cat, name string, pid, tid int) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, cat: cat, nm: name, pid: int32(pid), tid: int32(tid), start: t.now()}
}

// End closes the span and records it. No-op on a zero span.
func (s Span) End(args []Arg) {
	if s.t == nil {
		return
	}
	s.t.append(Event{Name: s.nm, Cat: s.cat, Ph: 'X', TS: s.t.sinceStart(s.start), Dur: s.t.now().Sub(s.start).Microseconds(), PID: s.pid, TID: s.tid, Args: args})
}

// Elapsed returns the time since the span started, 0 for a zero span. It
// lets instrumented code reuse the span's clock for metric observations
// without importing time.Now.
func (s Span) Elapsed() time.Duration {
	if s.t == nil {
		return 0
	}
	return s.t.now().Sub(s.start)
}

// WriteJSON serializes the trace in the Chrome trace_event JSON format:
// load the file in chrome://tracing (or https://ui.perfetto.dev) to see
// the run as a timeline. The output is deterministic — events appear in
// recording order and args in emission order — which the golden-file test
// relies on.
func (t *Trace) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	if t != nil {
		t.mu.Lock()
		events := t.events
		t.mu.Unlock()
		for i := range events {
			if i > 0 {
				if _, err := bw.WriteString(",\n"); err != nil {
					return err
				}
			}
			if err := writeEvent(bw, &events[i]); err != nil {
				return err
			}
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// writeEvent emits one event object. Field order is fixed; names pass
// through encoding/json for escaping.
func writeEvent(bw *bufio.Writer, e *Event) error {
	writeString := func(key, val string) error {
		q, err := json.Marshal(val)
		if err != nil {
			return err
		}
		if _, err := bw.WriteString("\"" + key + "\":"); err != nil {
			return err
		}
		_, err = bw.Write(q)
		return err
	}
	writeInt := func(key string, val int64) error {
		if _, err := bw.WriteString(",\"" + key + "\":" + strconv.FormatInt(val, 10)); err != nil {
			return err
		}
		return nil
	}
	if err := bw.WriteByte('{'); err != nil {
		return err
	}
	if err := writeString("name", e.Name); err != nil {
		return err
	}
	if _, err := bw.WriteString(","); err != nil {
		return err
	}
	if err := writeString("cat", e.Cat); err != nil {
		return err
	}
	if _, err := bw.WriteString(",\"ph\":\"" + string(e.Ph) + "\""); err != nil {
		return err
	}
	if err := writeInt("ts", e.TS); err != nil {
		return err
	}
	if e.Ph == 'X' {
		if err := writeInt("dur", e.Dur); err != nil {
			return err
		}
	}
	if err := writeInt("pid", int64(e.PID)); err != nil {
		return err
	}
	if err := writeInt("tid", int64(e.TID)); err != nil {
		return err
	}
	if len(e.Args) > 0 {
		if _, err := bw.WriteString(",\"args\":{"); err != nil {
			return err
		}
		for i, a := range e.Args {
			if i > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			q, err := json.Marshal(a.Key)
			if err != nil {
				return err
			}
			if _, err := bw.Write(q); err != nil {
				return err
			}
			if _, err := bw.WriteString(":" + strconv.FormatInt(a.Val, 10)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('}'); err != nil {
			return err
		}
	}
	return bw.WriteByte('}')
}

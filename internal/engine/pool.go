package engine

import (
	"context"
	"errors"
	"runtime"
	"sync"

	"redistgo/internal/kpbs"
	"redistgo/internal/obs"
)

// Pool is the streaming counterpart of SolveBatch: a long-lived solver
// pool fed one instance at a time by many concurrent producers. It is the
// request-queue/solver-pool layer the scheduling service (internal/serve)
// stands on — SolveBatch owns a batch from start to finish, while a Pool
// outlives any individual request stream.
//
// Guarantees, mirroring the batch engine where they apply:
//
//   - Determinism: a job's Result is exactly what kpbs.Solve would return
//     for its Instance, independent of pool sizing or scheduling order.
//   - Error isolation: a bad or panicking instance yields an error Result
//     for its submitter and never affects other jobs or workers.
//   - Bounded concurrency and memory: at most Workers goroutines solve
//     simultaneously and at most QueueDepth jobs wait; beyond that,
//     TrySubmit refuses instead of buffering without bound — the
//     backpressure signal admission control needs.
//   - Delivery: every successfully submitted job receives exactly one
//     Result, even when the pool closes while the job is queued (it is
//     then ErrPoolClosed) — so Close drains rather than strands.
type Pool struct {
	queue chan poolJob
	quit  chan struct{}
	wg    sync.WaitGroup

	obs    *obs.PoolObs
	defObs *obs.Observer
	shard  kpbs.ShardMode

	mu     sync.RWMutex
	closed bool
}

// PoolOptions configure NewPool.
type PoolOptions struct {
	// Workers bounds the number of concurrent solver goroutines;
	// values ≤ 0 select runtime.GOMAXPROCS(0) via the same rule as
	// SolveBatch.
	Workers int
	// QueueDepth bounds how many submitted jobs may wait for a worker;
	// values ≤ 0 select 2×Workers. When the queue is full, TrySubmit
	// returns ErrQueueFull — the caller decides whether to shed or block.
	QueueDepth int
	// Obs attaches the observability layer (queue depth, worker occupancy,
	// per-job latency under "engine.pool.*"); it is also handed to each
	// job's solver options unless the instance carries its own observer.
	// nil disables all instrumentation.
	Obs *obs.Observer
	// Shard is the pool-wide default for kpbs.Options.Shard, applied to
	// every instance whose own Opts.Shard is the zero value.
	Shard kpbs.ShardMode
}

// ErrPoolClosed reports a submission to (or a job stranded in) a pool
// that has been closed.
var ErrPoolClosed = errors.New("engine: pool closed")

// ErrQueueFull reports that the pool's request queue is at capacity.
var ErrQueueFull = errors.New("engine: pool queue full")

// poolJob is one queued solve: the instance, the submitter's context
// (checked again when a worker picks the job up), the buffered result
// channel the outcome is delivered on, and the queue-wait span opened at
// submission (before the channel send — a worker may claim the job the
// instant it lands in the buffer).
type poolJob struct {
	inst   Instance
	ctx    context.Context
	result chan Result
	wait   obs.WaitSpan
}

// NewPool starts the workers and returns the running pool. Release with
// Close.
func NewPool(opts PoolOptions) *Pool {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	depth := opts.QueueDepth
	if depth <= 0 {
		depth = 2 * workers
	}
	p := &Pool{
		queue:  make(chan poolJob, depth),
		quit:   make(chan struct{}),
		obs:    opts.Obs.Pool(),
		defObs: opts.Obs,
		shard:  opts.Shard,
	}
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go p.worker(w)
	}
	return p
}

// worker services the queue until the pool closes, then drains whatever
// is still queued before exiting so no accepted job is stranded.
func (p *Pool) worker(w int) {
	defer p.wg.Done()
	//redistlint:allow ctxpoll the quit channel is the pool's cancellation signal; each job's own context is checked in run
	for {
		select {
		case job := <-p.queue:
			p.run(w, job)
		case <-p.quit:
			//redistlint:allow ctxpoll bounded drain: exits on the first empty poll of the queue
			for {
				select {
				case job := <-p.queue:
					p.run(w, job)
				default:
					return
				}
			}
		}
	}
}

// run solves one job and delivers its result. The result channel is
// buffered, so delivery never blocks a worker on a departed submitter.
func (p *Pool) run(w int, job poolJob) {
	if err := job.ctx.Err(); err != nil {
		job.wait.Abandon()
		job.result <- Result{Err: err}
		return
	}
	sp, wait := job.wait.Dequeue(w)
	res := solveOne(job.inst, p.defObs, p.shard)
	res.Wait = wait
	res.Solve = sp.Done(res.Err)
	job.result <- res
}

// TrySubmit enqueues the instance without blocking. It returns the
// channel the Result will be delivered on, ErrQueueFull when the queue is
// at capacity, or ErrPoolClosed after Close. A successful TrySubmit
// guarantees exactly one Result on the channel.
func (p *Pool) TrySubmit(ctx context.Context, inst Instance) (<-chan Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	job := poolJob{inst: inst, ctx: ctx, result: make(chan Result, 1), wait: p.obs.StartWait()}
	// The read lock excludes the closed-flag flip, so a job admitted here
	// is either processed by a draining worker or failed by Close's final
	// sweep — never silently dropped.
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return nil, ErrPoolClosed
	}
	select {
	case p.queue <- job:
		p.obs.Enqueue()
		return job.result, nil
	default:
		return nil, ErrQueueFull
	}
}

// Submit enqueues the instance, blocking while the queue is full, and
// waits for its Result. The context bounds both waits; cancellation while
// solving returns the context error without interrupting the worker (the
// solver is CPU-bound and finite, exactly as in SolveBatch).
//
// The blocking enqueue holds the admission read-lock, so Close cannot
// flip the closed flag mid-send: the workers are still draining (quit
// closes under the write lock this sender excludes), which guarantees the
// send completes and the job is processed.
func (p *Pool) Submit(ctx context.Context, inst Instance) Result {
	if ctx == nil {
		ctx = context.Background()
	}
	job := poolJob{inst: inst, ctx: ctx, result: make(chan Result, 1), wait: p.obs.StartWait()}
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return Result{Err: ErrPoolClosed}
	}
	select {
	case p.queue <- job:
		p.obs.Enqueue()
		p.mu.RUnlock()
	case <-ctx.Done():
		p.mu.RUnlock()
		return Result{Err: ctx.Err()}
	}
	select {
	case res := <-job.result:
		return res
	case <-ctx.Done():
		return Result{Err: ctx.Err()}
	}
}

// Close stops admission, then waits for the workers to finish every
// queued and in-flight job — a drain, not an abort. Jobs admitted before
// Close all happen-before the closed-flag flip (admission runs under the
// lock), so every one of them is in the buffer when quit closes and the
// draining workers deliver its Result. Safe to call twice;
// Submit/TrySubmit after Close fail with ErrPoolClosed.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.quit)
	p.mu.Unlock()
	p.wg.Wait()
}

package engine

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"redistgo/internal/bipartite"
	"redistgo/internal/kpbs"
	"redistgo/internal/trafficgen"
)

// randomBatch builds n deterministic random instances cycling through all
// four algorithms.
func randomBatch(n int, seed int64) []Instance {
	rng := rand.New(rand.NewSource(seed))
	algs := []kpbs.Algorithm{kpbs.GGP, kpbs.OGGP, kpbs.MinSteps, kpbs.Greedy}
	insts := make([]Instance, n)
	for i := range insts {
		insts[i] = Instance{
			G:    trafficgen.PaperRandom(rng, 12, 60, 1, 50),
			K:    1 + rng.Intn(8),
			Beta: int64(rng.Intn(4)),
			Opts: kpbs.Options{Algorithm: algs[i%len(algs)]},
		}
	}
	return insts
}

// TestSolveBatchMatchesSerial is the determinism contract: for any worker
// count the batch result must be byte-identical to the serial loop.
func TestSolveBatchMatchesSerial(t *testing.T) {
	insts := randomBatch(64, 7)
	want := SolveSerial(insts)
	for _, workers := range []int{0, 1, 2, 4, 16, 100} {
		got := SolveBatch(insts, Options{Workers: workers})
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if (got[i].Err == nil) != (want[i].Err == nil) {
				t.Fatalf("workers=%d instance %d: err %v, want %v", workers, i, got[i].Err, want[i].Err)
			}
			if got[i].Err != nil {
				continue
			}
			if got[i].Schedule.String() != want[i].Schedule.String() {
				t.Fatalf("workers=%d instance %d: schedule differs from serial:\n%s\nvs\n%s",
					workers, i, got[i].Schedule, want[i].Schedule)
			}
			if !reflect.DeepEqual(got[i].Schedule, want[i].Schedule) {
				t.Fatalf("workers=%d instance %d: schedule struct differs from serial", workers, i)
			}
		}
	}
}

// TestSolveBatchSchedulesAreFeasible spot-checks that concurrent solving
// yields feasible schedules (run under -race this also exercises the
// race-cleanliness of the core).
func TestSolveBatchSchedulesAreFeasible(t *testing.T) {
	insts := randomBatch(48, 11)
	for i, r := range SolveBatch(insts, Options{Workers: 8}) {
		if r.Err != nil {
			t.Fatalf("instance %d: %v", i, r.Err)
		}
		if err := r.Schedule.Validate(insts[i].G, insts[i].K); err != nil {
			t.Fatalf("instance %d: infeasible: %v", i, err)
		}
	}
}

// TestSolveBatchErrorIsolation: bad instances error out individually and
// never poison their neighbors.
func TestSolveBatchErrorIsolation(t *testing.T) {
	good := bipartite.New(2, 2)
	good.AddEdge(0, 0, 5)
	good.AddEdge(1, 1, 3)
	insts := []Instance{
		{G: good, K: 2, Beta: 1, Opts: kpbs.Options{Algorithm: kpbs.OGGP}},
		{G: good, K: 0, Beta: 1},  // invalid k
		{G: nil, K: 2, Beta: 1},   // nil graph
		{G: good, K: 2, Beta: -3}, // invalid beta
		{G: good, K: 2, Beta: 1, Opts: kpbs.Options{Algorithm: kpbs.Algorithm(99)}}, // unknown algorithm
		{G: good, K: 2, Beta: 1, Opts: kpbs.Options{Algorithm: kpbs.GGP}},
	}
	res := SolveBatch(insts, Options{Workers: 3})
	for _, i := range []int{1, 2, 3, 4} {
		if res[i].Err == nil {
			t.Fatalf("instance %d: bad instance accepted", i)
		}
		if res[i].Schedule != nil {
			t.Fatalf("instance %d: schedule and error both set", i)
		}
	}
	for _, i := range []int{0, 5} {
		if res[i].Err != nil {
			t.Fatalf("instance %d: good instance failed: %v", i, res[i].Err)
		}
		if err := res[i].Schedule.Validate(good, 2); err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
	}
}

// TestSolveBatchCancellation: a pre-cancelled context fails every
// instance with the context error without solving anything.
func TestSolveBatchCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	insts := randomBatch(16, 3)
	res := SolveBatch(insts, Options{Workers: 4, Ctx: ctx})
	if len(res) != len(insts) {
		t.Fatalf("%d results, want %d", len(res), len(insts))
	}
	for i, r := range res {
		if r.Err != context.Canceled {
			t.Fatalf("instance %d: err = %v, want context.Canceled", i, r.Err)
		}
	}
}

// TestSolveBatchEmpty: the degenerate batch returns an empty slice and
// spawns nothing.
func TestSolveBatchEmpty(t *testing.T) {
	if res := SolveBatch(nil, Options{}); len(res) != 0 {
		t.Fatalf("non-empty result for empty batch: %v", res)
	}
}

// TestSolveBatchShardDefault: the batch-level Shard option is applied to
// instances that left Opts.Shard at the zero value, and every instance
// still solves to a feasible schedule. On multi-component graphs the
// sharded results must match a per-instance ShardOn solve exactly.
func TestSolveBatchShardDefault(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	insts := make([]Instance, 8)
	for i := range insts {
		m := trafficgen.BlockDiagonal(rng, 3, 4, 0, 1, 100)
		g, err := bipartite.FromMatrix(m)
		if err != nil {
			t.Fatal(err)
		}
		insts[i] = Instance{G: g, K: 6, Beta: 1, Opts: kpbs.Options{Algorithm: kpbs.OGGP}}
	}
	batched := SolveBatch(insts, Options{Workers: 4, Shard: kpbs.ShardAuto})
	for i, r := range batched {
		if r.Err != nil {
			t.Fatalf("instance %d: %v", i, r.Err)
		}
		explicit := insts[i]
		explicit.Opts.Shard = kpbs.ShardAuto
		want, err := kpbs.Solve(explicit.G, explicit.K, explicit.Beta, explicit.Opts)
		if err != nil {
			t.Fatal(err)
		}
		if r.Schedule.String() != want.String() {
			t.Fatalf("instance %d: batch-level Shard not applied", i)
		}
	}
	// An instance that carries its own mode keeps it: ShardOn on a
	// connected graph still matches the monolith byte for byte, proving the
	// override does not clobber explicit per-instance settings.
	g, err := bipartite.FromMatrix(trafficgen.DenseUniform(rng, 6, 6, 1, 50))
	if err != nil {
		t.Fatal(err)
	}
	own := []Instance{{G: g, K: 3, Beta: 1, Opts: kpbs.Options{Algorithm: kpbs.GGP, Shard: kpbs.ShardOn}}}
	res := SolveBatch(own, Options{Shard: kpbs.ShardAuto})
	if res[0].Err != nil {
		t.Fatal(res[0].Err)
	}
	mono, err := kpbs.Solve(g, 3, 1, kpbs.Options{Algorithm: kpbs.GGP})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Schedule.String() != mono.String() {
		t.Fatal("explicit per-instance ShardOn diverged from the monolith on a connected graph")
	}
}

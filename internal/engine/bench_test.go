package engine

import (
	"fmt"
	"runtime"
	"testing"
)

// BenchmarkSolveBatch compares the worker-pool engine against the serial
// reference loop on a fixed batch. On a 4+ core machine the pooled
// variants show near-linear scaling (≥ 2× over serial) while producing
// byte-identical schedules — verified once per run below. Run with:
//
//	go test ./internal/engine -run='^$' -bench=SolveBatch
func BenchmarkSolveBatch(b *testing.B) {
	insts := randomBatch(256, 42)

	// One-time contract check so a benchmark run also re-verifies the
	// determinism claim it advertises.
	want := SolveSerial(insts)
	got := SolveBatch(insts, Options{})
	for i := range want {
		if (want[i].Err == nil) != (got[i].Err == nil) ||
			(want[i].Err == nil && want[i].Schedule.String() != got[i].Schedule.String()) {
			b.Fatalf("instance %d: batch result differs from serial", i)
		}
	}

	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			SolveSerial(insts)
		}
	})
	counts := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 2 && p != 4 {
		counts = append(counts, p)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				SolveBatch(insts, Options{Workers: workers})
			}
		})
	}
}

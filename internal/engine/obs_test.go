package engine

import (
	"context"
	"testing"

	"redistgo/internal/bipartite"
	"redistgo/internal/kpbs"
	"redistgo/internal/obs"
)

// TestSolveBatchObserved checks the engine view records a full batch:
// instance and error counts, settled gauges, per-instance trace spans, and
// solver metrics accumulated through the handed-down observer.
func TestSolveBatchObserved(t *testing.T) {
	insts := randomBatch(24, 11)
	// One guaranteed-bad instance for the error counter.
	bad := bipartite.New(1, 1)
	bad.AddEdge(0, 0, 1)
	insts = append(insts, Instance{G: bad, K: 0, Beta: 0})

	o := obs.New()
	want := SolveSerial(insts)
	got := SolveBatch(insts, Options{Workers: 4, Obs: o})
	for i := range got {
		if (got[i].Err == nil) != (want[i].Err == nil) {
			t.Fatalf("instance %d: err %v, serial err %v", i, got[i].Err, want[i].Err)
		}
		if got[i].Err == nil && got[i].Schedule.String() != want[i].Schedule.String() {
			t.Fatalf("instance %d: observed batch diverged from serial", i)
		}
	}

	snap := o.Metrics.Snapshot()
	if got := snap.Counters["engine.batches_total"]; got != 1 {
		t.Errorf("batches_total = %d, want 1", got)
	}
	if got := snap.Counters["engine.instances_total"]; got != int64(len(insts)) {
		t.Errorf("instances_total = %d, want %d", got, len(insts))
	}
	if got := snap.Counters["engine.errors_total"]; got != 1 {
		t.Errorf("errors_total = %d, want 1", got)
	}
	if got := snap.Gauges["engine.queue_depth"]; got != 0 {
		t.Errorf("queue_depth after batch = %d, want 0", got)
	}
	if got := snap.Gauges["engine.workers_active"]; got != 0 {
		t.Errorf("workers_active after batch = %d, want 0", got)
	}
	if u := snap.Gauges["engine.worker_utilization_pct"]; u < 0 || u > 100 {
		t.Errorf("worker_utilization_pct = %d, want within [0,100]", u)
	}
	// The batch observer is handed down to each solver, so per-algorithm
	// solver metrics accumulate too (randomBatch cycles all algorithms).
	if got := snap.Counters["solver.solves_total.OGGP"]; got <= 0 {
		t.Errorf("solver.solves_total.OGGP = %d, want > 0 via handed-down observer", got)
	}
	// One batch span + one span per solved instance at minimum.
	if o.Trace.Len() < len(insts) {
		t.Errorf("trace has %d events, want >= %d", o.Trace.Len(), len(insts))
	}
}

// TestSolveBatchObservedInstanceOverride: an instance carrying its own
// observer keeps it; the batch observer takes the rest.
func TestSolveBatchObservedInstanceOverride(t *testing.T) {
	own := obs.New()
	batch := obs.New()
	insts := randomBatch(4, 13)
	insts[2].Opts.Obs = own

	SolveBatch(insts, Options{Workers: 2, Obs: batch})
	// Sum per-algorithm solve counters over the fixed algorithm cycle
	// (randomBatch order), keeping the test free of map iteration.
	sumSolves := func(o *obs.Observer) int64 {
		snap := o.Metrics.Snapshot()
		var total int64
		for _, alg := range []string{"GGP", "OGGP", "MinSteps", "Greedy"} {
			total += snap.Counters["solver.solves_total."+alg]
		}
		return total
	}
	ownSolves, batchSolves := sumSolves(own), sumSolves(batch)
	if ownSolves != 1 {
		t.Errorf("instance observer saw %d solves, want 1", ownSolves)
	}
	if batchSolves != 3 {
		t.Errorf("batch observer saw %d solves, want 3", batchSolves)
	}
}

// TestSolveBatchObservedCancelled: instances skipped by a cancelled
// context still settle the gauges and count as errors.
func TestSolveBatchObservedCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o := obs.New()
	insts := randomBatch(8, 17)
	results := SolveBatch(insts, Options{Workers: 2, Ctx: ctx, Obs: o})
	for i, r := range results {
		if r.Err == nil {
			t.Fatalf("instance %d: expected context error", i)
		}
	}
	snap := o.Metrics.Snapshot()
	if got := snap.Counters["engine.errors_total"]; got != int64(len(insts)) {
		t.Errorf("errors_total = %d, want %d", got, len(insts))
	}
	if got := snap.Gauges["engine.queue_depth"]; got != 0 {
		t.Errorf("queue_depth = %d, want 0", got)
	}
}

// TestSolveBatchNilObs pins the disabled path: no observer, no panic, and
// the kpbs options stay untouched for the solver.
func TestSolveBatchNilObs(t *testing.T) {
	insts := []Instance{{G: bipartite.New(1, 1), K: 1, Beta: 0, Opts: kpbs.Options{Algorithm: kpbs.OGGP}}}
	insts[0].G.AddEdge(0, 0, 5)
	res := SolveBatch(insts, Options{})
	if res[0].Err != nil {
		t.Fatal(res[0].Err)
	}
}

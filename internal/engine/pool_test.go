package engine

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"redistgo/internal/obs"
)

// TestPoolMatchesSerial: results delivered by the pool are exactly what
// the serial loop computes, for any pool shape — the same determinism
// contract SolveBatch carries.
func TestPoolMatchesSerial(t *testing.T) {
	insts := randomBatch(40, 13)
	want := SolveSerial(insts)
	for _, workers := range []int{1, 2, 8} {
		p := NewPool(PoolOptions{Workers: workers})
		var wg sync.WaitGroup
		got := make([]Result, len(insts))
		for i, inst := range insts {
			wg.Add(1)
			go func(i int, inst Instance) {
				defer wg.Done()
				got[i] = p.Submit(context.Background(), inst)
			}(i, inst)
		}
		wg.Wait()
		p.Close()
		for i := range want {
			if (got[i].Err == nil) != (want[i].Err == nil) {
				t.Fatalf("workers=%d instance %d: err %v, want %v", workers, i, got[i].Err, want[i].Err)
			}
			if got[i].Err == nil && !reflect.DeepEqual(got[i].Schedule, want[i].Schedule) {
				t.Fatalf("workers=%d instance %d: schedule differs from serial", workers, i)
			}
		}
	}
}

// TestPoolCloseDrains: every job admitted before Close gets a real
// result — Close is a drain, not an abort.
func TestPoolCloseDrains(t *testing.T) {
	insts := randomBatch(16, 17)
	p := NewPool(PoolOptions{Workers: 2, QueueDepth: len(insts)})
	chans := make([]<-chan Result, 0, len(insts))
	for _, inst := range insts {
		ch, err := p.TrySubmit(context.Background(), inst)
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	p.Close()
	for i, ch := range chans {
		res := <-ch
		if res.Err != nil {
			t.Fatalf("job %d admitted before Close got %v, want a solved schedule", i, res.Err)
		}
	}
	if _, err := p.TrySubmit(context.Background(), insts[0]); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("TrySubmit after Close: %v, want ErrPoolClosed", err)
	}
	if res := p.Submit(context.Background(), insts[0]); !errors.Is(res.Err, ErrPoolClosed) {
		t.Fatalf("Submit after Close: %v, want ErrPoolClosed", res.Err)
	}
}

// TestPoolQueueFull: with the single worker parked on jobs, the queue
// fills and TrySubmit sheds instead of buffering without bound.
func TestPoolQueueFull(t *testing.T) {
	insts := randomBatch(64, 19)
	p := NewPool(PoolOptions{Workers: 1, QueueDepth: 2})
	defer p.Close()
	sawFull := false
	for _, inst := range insts {
		if _, err := p.TrySubmit(context.Background(), inst); errors.Is(err, ErrQueueFull) {
			sawFull = true
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if !sawFull {
		t.Fatal("64 instant submissions onto a depth-2 queue never saw ErrQueueFull")
	}
}

// TestPoolContextCancel: a cancelled submitter gets the context error,
// and a job whose context died while queued is abandoned, not solved.
func TestPoolContextCancel(t *testing.T) {
	insts := randomBatch(8, 23)
	o := obs.New()
	p := NewPool(PoolOptions{Workers: 1, QueueDepth: len(insts), Obs: o})
	ctx, cancel := context.WithCancel(context.Background())
	chans := make([]<-chan Result, 0, len(insts))
	for _, inst := range insts {
		ch, err := p.TrySubmit(ctx, inst)
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	cancel()
	p.Close()
	abandoned := 0
	for _, ch := range chans {
		if res := <-ch; errors.Is(res.Err, context.Canceled) {
			abandoned++
		}
	}
	if abandoned == 0 {
		t.Fatal("no queued job observed its cancelled context")
	}
	if got := o.Metrics.Snapshot().Counters["engine.pool.errors_total"]; got < int64(abandoned) {
		t.Errorf("errors_total = %d, want >= %d abandoned jobs", got, abandoned)
	}

	res := p.Submit(ctx, insts[0])
	if !errors.Is(res.Err, ErrPoolClosed) && !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("Submit on a closed pool with dead context: %v", res.Err)
	}
}

// TestPoolObserved: the pool view accounts for every job exactly once.
func TestPoolObserved(t *testing.T) {
	insts := randomBatch(12, 29)
	o := obs.New()
	p := NewPool(PoolOptions{Workers: 3, Obs: o})
	for _, inst := range insts {
		if res := p.Submit(context.Background(), inst); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	p.Close()
	snap := o.Metrics.Snapshot()
	if got := snap.Counters["engine.pool.submitted_total"]; got != int64(len(insts)) {
		t.Errorf("submitted_total = %d, want %d", got, len(insts))
	}
	if got := snap.Counters["engine.pool.completed_total"]; got != int64(len(insts)) {
		t.Errorf("completed_total = %d, want %d", got, len(insts))
	}
	if got := snap.Gauges["engine.pool.queue_depth"]; got != 0 {
		t.Errorf("queue_depth = %d after drain, want 0", got)
	}
}

// Package engine provides a concurrent batch-solving front end to the
// K-PBS schedulers. Production deployments (and the figure harnesses)
// invoke the solver as a hot batched kernel — thousands of independent
// instances per communication round — so the engine fans a batch out over
// a bounded worker pool instead of looping serially.
//
// Guarantees:
//
//   - Determinism: Result[i] is exactly what kpbs.Solve would return for
//     Instances[i] — byte-identical schedules regardless of worker count
//     or scheduling order. Workers share no mutable state; each instance
//     is solved independently.
//   - Error isolation: one bad instance (invalid parameters, nil graph,
//     even a panicking solver) yields an error in its own Result slot and
//     never affects the rest of the batch.
//   - Bounded concurrency: at most Options.Workers goroutines (default
//     GOMAXPROCS) solve simultaneously.
//   - Cancellation: when Options.Ctx is cancelled, instances not yet
//     started complete immediately with the context's error; instances
//     already solving run to completion (the solver is CPU-bound and
//     finite).
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"redistgo/internal/bipartite"
	"redistgo/internal/kpbs"
	"redistgo/internal/obs"
)

// Instance is one K-PBS problem: schedule the communications of G under
// at most K simultaneous transfers with per-step setup delay Beta, using
// the algorithm and post-passes selected by Opts.
type Instance struct {
	G    *bipartite.Graph
	K    int
	Beta int64
	Opts kpbs.Options
	// Cache, when non-nil, routes the solve through the content-addressed
	// solve cache: a hit (or a coalesced concurrent solve of the same
	// instance) skips the solver entirely. Misses solve inside the cache's
	// single-flight and populate it. Instances whose graphs are not in
	// canonical row-major order bypass the cache (see kpbs.NewResult).
	Cache *kpbs.SolveCache
}

// Result is the outcome for the instance at the same index of the batch:
// exactly one of Schedule and Err is non-nil.
//
// Wait and Solve are the job's measured pool-queue wait and solve time.
// They are populated only by an observed Pool (PoolOptions.Obs non-nil) —
// the durations come from the observer's spans, keeping the engine itself
// clock-free under the determinism lint — and are always zero for
// SolveBatch results and unobserved pools.
type Result struct {
	Schedule *kpbs.Schedule
	Err      error
	Wait     time.Duration
	Solve    time.Duration
}

// Options configure SolveBatch.
type Options struct {
	// Workers bounds the number of concurrent solver goroutines;
	// values ≤ 0 select runtime.GOMAXPROCS(0).
	Workers int
	// Ctx cancels the remainder of the batch; nil means Background.
	Ctx context.Context
	// Obs attaches the observability layer: batch/instance counters, queue
	// depth and worker-utilization gauges, per-instance latency, and trace
	// spans per instance solve. It is also handed down to each instance's
	// solver options unless the instance carries its own observer. nil (the
	// default) disables all instrumentation. Observation is strictly
	// passive: results stay byte-identical to SolveSerial (this package
	// never reads the clock itself — timing lives inside the obs views — so
	// the determinism lint keeps holding).
	Obs *obs.Observer
	// Shard is the batch-wide default for kpbs.Options.Shard: it is applied
	// to every instance whose own Opts.Shard is the zero value (ShardOff),
	// mirroring how Obs defaults. Component sharding composes with the
	// batch pool — each instance still occupies one batch worker; the
	// sharded solver fans out its components internally.
	Shard kpbs.ShardMode
}

// SolveBatch solves every instance and returns one Result per instance,
// in input order. See the package comment for the determinism, isolation,
// bounding and cancellation guarantees.
func SolveBatch(instances []Instance, opts Options) []Result {
	results := make([]Result, len(instances))
	if len(instances) == 0 {
		return results
	}
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(instances) {
		workers = len(instances)
	}

	// All observation goes through the nil-safe views: with opts.Obs nil,
	// bo is nil and every call below is a no-op.
	bo := opts.Obs.Engine().Batch(len(instances), workers)

	// Work-stealing over an atomic cursor: cheap, order-preserving in the
	// results slice, and naturally balanced when instance sizes vary.
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(instances) {
					return
				}
				if err := ctx.Err(); err != nil {
					results[i] = Result{Err: err}
					bo.Skip()
					continue
				}
				sp := bo.Instance(w, i)
				results[i] = solveOne(instances[i], opts.Obs, opts.Shard)
				sp.Done(results[i].Err)
			}
		}()
	}
	wg.Wait()
	bo.Done()
	return results
}

// solveOne solves a single instance, converting solver panics into
// errors so a malformed matrix can never take down the whole batch.
// defObs and defShard are the batch-level defaults, handed to the solver
// unless the instance brings its own.
func solveOne(inst Instance, defObs *obs.Observer, defShard kpbs.ShardMode) (res Result) {
	defer func() {
		if r := recover(); r != nil {
			res = Result{Err: fmt.Errorf("engine: solver panicked: %v", r)}
		}
	}()
	if inst.Opts.Obs == nil {
		inst.Opts.Obs = defObs
	}
	if inst.Opts.Shard == kpbs.ShardOff {
		inst.Opts.Shard = defShard
	}
	if inst.Cache != nil {
		s, _, err := inst.Cache.GetOrSolve(inst.G, inst.K, inst.Beta, inst.Opts)
		if err == nil {
			return Result{Schedule: s}
		}
		if !kpbs.IsNonCanonical(err) {
			return Result{Err: err}
		}
		// Non-canonical edge order: the cache cannot retain a delta base for
		// it; solve directly (uncached) instead of failing the request.
	}
	s, err := kpbs.Solve(inst.G, inst.K, inst.Beta, inst.Opts)
	if err != nil {
		return Result{Err: err}
	}
	return Result{Schedule: s}
}

// SolveSerial solves the batch with a plain loop on the calling
// goroutine. It is the reference implementation SolveBatch must match
// byte-for-byte; benchmarks and differential tests compare against it.
func SolveSerial(instances []Instance) []Result {
	results := make([]Result, len(instances))
	for i, inst := range instances {
		results[i] = solveOne(inst, nil, kpbs.ShardOff)
	}
	return results
}

package netsim

import (
	"fmt"
	"math"
	"math/rand"
)

// Flow is one point-to-point transfer: Bytes bytes from sender Src (a C1
// node) to receiver Dst (a C2 node).
type Flow struct {
	Src, Dst int
	Bytes    float64
}

// Config parameterizes a Simulator.
type Config struct {
	Platform Platform

	// CongestionAlpha controls the TCP derating applied to the backbone in
	// brute-force mode when it is oversubscribed: with offered/capacity
	// ratio ρ > 1 the effective backbone capacity becomes
	// T / (1 + CongestionAlpha·(ρ − 1)). Zero disables derating.
	// The default (DefaultCongestionAlpha) is calibrated so the paper's
	// reported 5–20 % brute-force penalty is reproduced for k = 3..7.
	CongestionAlpha float64

	// JitterSigma is the standard deviation of the per-flow lognormal
	// unfairness factor applied in brute-force mode (TCP flows never share
	// perfectly; persistent per-flow throughput differences create
	// stragglers and run-to-run variance). Zero disables jitter.
	JitterSigma float64

	// FlowOverhead (bits/s) models TCP's loss-recovery inefficiency over
	// shaped links in brute-force mode: retransmissions and window stalls
	// cost a roughly constant bit-rate budget per NIC, so on a link shaped
	// to t bits/s every flow only converts the fraction t/(t+FlowOverhead)
	// of its allocation into goodput. Tightly shaped NICs (large k on the
	// paper's 100/k Mbit testbed) lose proportionally more — the reason
	// the paper's measured gains grow with k. Zero disables the overhead.
	FlowOverhead float64

	// RunJitterSigma is the standard deviation of a run-level lognormal
	// factor on the congested backbone's effective capacity in
	// brute-force mode: how lucky this run's TCP dynamics were overall.
	// It reproduces the paper's observation that repeated brute-force
	// runs vary by up to ~10 % while scheduled runs are deterministic.
	RunJitterSigma float64

	// Seed drives the jitter; the same seed reproduces the same run.
	Seed int64

	// BackboneProfile optionally makes the backbone capacity vary over
	// time (piecewise constant). Empty means the constant
	// Platform.Backbone. Used by the dynamic-backbone experiments
	// (paper §6 future work).
	BackboneProfile Profile
}

// Default congestion-model parameters (see DESIGN.md §5 for calibration).
const (
	DefaultCongestionAlpha = 0.03
	DefaultJitterSigma     = 0.10
	DefaultFlowOverhead    = 2 * Mbit
	DefaultRunJitterSigma  = 0.02
)

// DefaultConfig returns a Config with the calibrated TCP model.
func DefaultConfig(p Platform, seed int64) Config {
	return Config{
		Platform:        p,
		CongestionAlpha: DefaultCongestionAlpha,
		JitterSigma:     DefaultJitterSigma,
		FlowOverhead:    DefaultFlowOverhead,
		RunJitterSigma:  DefaultRunJitterSigma,
		Seed:            seed,
	}
}

// Result reports a simulated redistribution.
type Result struct {
	// Time is the total wall-clock seconds, including barrier costs in
	// scheduled mode.
	Time float64
	// Steps is the number of communication steps (1 for brute force).
	Steps int
	// StepTimes lists the duration of each step, excluding barriers.
	StepTimes []float64
}

// Simulator runs fluid-flow simulations over one platform.
type Simulator struct {
	cfg Config
}

// Platform returns the simulator's platform description.
func (s *Simulator) Platform() Platform { return s.cfg.Platform }

// Profile returns the simulator's backbone capacity profile (possibly
// empty).
func (s *Simulator) Profile() Profile { return s.cfg.BackboneProfile }

// New returns a Simulator for the given configuration.
func New(cfg Config) (*Simulator, error) {
	if err := cfg.Platform.Validate(); err != nil {
		return nil, err
	}
	if cfg.CongestionAlpha < 0 || cfg.JitterSigma < 0 || cfg.FlowOverhead < 0 || cfg.RunJitterSigma < 0 {
		return nil, fmt.Errorf("netsim: congestion parameters must be non-negative")
	}
	if err := cfg.BackboneProfile.Validate(); err != nil {
		return nil, err
	}
	return &Simulator{cfg: cfg}, nil
}

// validateFlows checks endpoints and sizes.
func (s *Simulator) validateFlows(flows []Flow) error {
	p := s.cfg.Platform
	for i, f := range flows {
		if f.Src < 0 || f.Src >= p.N1 {
			return fmt.Errorf("netsim: flow %d sender %d out of range [0,%d)", i, f.Src, p.N1)
		}
		if f.Dst < 0 || f.Dst >= p.N2 {
			return fmt.Errorf("netsim: flow %d receiver %d out of range [0,%d)", i, f.Dst, p.N2)
		}
		if f.Bytes < 0 || math.IsNaN(f.Bytes) || math.IsInf(f.Bytes, 0) {
			return fmt.Errorf("netsim: flow %d has invalid size %g", i, f.Bytes)
		}
	}
	return nil
}

// BruteForce simulates the paper's baseline: every flow starts at time
// zero and the transport layer alone handles the contention. Returns the
// completion time of the last flow.
func (s *Simulator) BruteForce(flows []Flow) (Result, error) {
	if err := s.validateFlows(flows); err != nil {
		return Result{}, err
	}
	rng := rand.New(rand.NewSource(s.cfg.Seed))
	weights := make([]float64, len(flows))
	for i := range weights {
		if s.cfg.JitterSigma > 0 {
			weights[i] = math.Exp(rng.NormFloat64() * s.cfg.JitterSigma)
		} else {
			weights[i] = 1
		}
	}
	runEff := 1.0
	if s.cfg.RunJitterSigma > 0 {
		// Run-level TCP luck: one lognormal factor for the whole run.
		runEff = math.Exp(rng.NormFloat64() * s.cfg.RunJitterSigma)
	}
	end, err := s.drain(flows, weights, true, 0)
	if err != nil {
		return Result{}, err
	}
	t := end / runEff
	return Result{Time: t, Steps: 1, StepTimes: []float64{t}}, nil
}

// RunSteps simulates a scheduled redistribution: the steps execute in
// order, separated by barriers costing beta seconds each (one barrier per
// step, as in the paper's cost model Σ(β + W(M_i))). Within a step all
// flows share the network fairly and without congestion derating: the
// scheduler guarantees at most k compatible flows.
func (s *Simulator) RunSteps(steps [][]Flow, beta float64) (Result, error) {
	return s.runSteps(steps, beta, false, 0)
}

// RunStepsCongested is RunSteps with the TCP congestion model active
// inside each step: a step whose flows oversubscribe the (possibly
// time-varying) backbone pays the derating penalty. This is the honest
// execution model for schedules computed with a stale k while the
// backbone capacity drifts (paper §6 dynamic case).
func (s *Simulator) RunStepsCongested(steps [][]Flow, beta float64) (Result, error) {
	return s.runSteps(steps, beta, true, 0)
}

// RunStepsFrom is RunStepsCongested starting at an absolute time offset,
// so that a multi-round adaptive driver can execute rounds back-to-back
// against one backbone profile.
func (s *Simulator) RunStepsFrom(steps [][]Flow, beta, start float64) (Result, error) {
	return s.runSteps(steps, beta, true, start)
}

func (s *Simulator) runSteps(steps [][]Flow, beta float64, tcpModel bool, start float64) (Result, error) {
	if beta < 0 {
		return Result{}, fmt.Errorf("netsim: negative beta %g", beta)
	}
	if start < 0 {
		return Result{}, fmt.Errorf("netsim: negative start time %g", start)
	}
	res := Result{Steps: len(steps)}
	cursor := start
	for i, step := range steps {
		if err := s.validateFlows(step); err != nil {
			return Result{}, fmt.Errorf("step %d: %w", i, err)
		}
		weights := make([]float64, len(step))
		for j := range weights {
			weights[j] = 1
		}
		cursor += beta
		end, err := s.drain(step, weights, tcpModel, cursor)
		if err != nil {
			return Result{}, fmt.Errorf("step %d: %w", i, err)
		}
		res.StepTimes = append(res.StepTimes, end-cursor)
		cursor = end
	}
	res.Time = cursor - start
	return res, nil
}

// drain runs the fluid event loop from absolute time start until every
// flow completes and returns the absolute end time. tcpModel enables the
// congestion model; the backbone capacity follows the configured profile.
func (s *Simulator) drain(flows []Flow, weights []float64, tcpModel bool, start float64) (float64, error) {
	p := s.cfg.Platform
	remaining := make([]float64, len(flows))
	active := 0
	for i, f := range flows {
		remaining[i] = f.Bytes
		if f.Bytes > 0 {
			active++
		}
	}
	now := start
	nicSend := p.T1 / 8 // bytes/s
	nicRecv := p.T2 / 8

	maxIter := 2*len(flows) + 2*len(s.cfg.BackboneProfile) + 4
	for iter := 0; active > 0; iter++ {
		if iter > maxIter {
			return 0, fmt.Errorf("netsim: event loop did not converge after %d iterations", iter)
		}
		backbone := s.cfg.BackboneProfile.CapacityAt(now, p.Backbone) / 8
		// Build resources over active flows (indices into flows).
		idx := make([]int, 0, active)
		for i := range flows {
			if remaining[i] > 0 {
				idx = append(idx, i)
			}
		}
		w := make([]float64, len(idx))
		for j, i := range idx {
			w[j] = weights[i]
		}
		// Group flows by NIC with deterministic (node-index) ordering so
		// that simulated times are bit-for-bit reproducible.
		send := make([][]int, p.N1)
		recv := make([][]int, p.N2)
		all := make([]int, len(idx))
		for j, i := range idx {
			send[flows[i].Src] = append(send[flows[i].Src], j)
			recv[flows[i].Dst] = append(recv[flows[i].Dst], j)
			all[j] = j
		}
		bb := backbone
		if tcpModel && s.cfg.CongestionAlpha > 0 {
			// Offered load: what the NICs alone would push at the
			// backbone. ρ > 1 means packet loss, shrinking windows and
			// wasted capacity; derate accordingly.
			offered := s.offeredLoad(len(idx), w, send, recv)
			if rho := offered / backbone; rho > 1 {
				bb = backbone / (1 + s.cfg.CongestionAlpha*(rho-1))
			}
		}
		resources := make([]resource, 0, len(send)+len(recv)+1)
		for _, members := range send {
			if len(members) > 0 {
				resources = append(resources, resource{capacity: nicSend, flows: members})
			}
		}
		for _, members := range recv {
			if len(members) > 0 {
				resources = append(resources, resource{capacity: nicRecv, flows: members})
			}
		}
		resources = append(resources, resource{capacity: bb, flows: all})

		rates := maxMinRates(len(idx), w, resources)
		if tcpModel && s.cfg.FlowOverhead > 0 {
			// Goodput inefficiency of TCP over shaped links: the slower
			// the shaped line rate, the larger the share of its budget a
			// flow wastes on retransmissions and recovery stalls. The
			// wasted capacity is consumed, not reallocated.
			t := math.Min(p.T1, p.T2)
			phi := t / (t + s.cfg.FlowOverhead)
			for j := range rates {
				rates[j] *= phi
			}
		}

		// Next event: a flow completion or a backbone capacity change.
		dt := math.Inf(1)
		for j, i := range idx {
			if rates[j] <= 0 {
				return 0, fmt.Errorf("netsim: flow %d allocated zero rate", i)
			}
			if t := remaining[i] / rates[j]; t < dt {
				dt = t
			}
		}
		if next := s.cfg.BackboneProfile.NextChangeAfter(now); next-now < dt {
			dt = next - now
		}
		now += dt
		for j, i := range idx {
			remaining[i] -= rates[j] * dt
			if remaining[i] <= 1e-6 {
				remaining[i] = 0
				active--
			}
		}
	}
	return now, nil
}

// offeredLoad computes the aggregate rate the active flows would achieve
// if the backbone were infinite: the max-min allocation under NIC
// constraints only. This is what TCP initially pushes into the backbone.
func (s *Simulator) offeredLoad(numFlows int, w []float64, send, recv [][]int) float64 {
	p := s.cfg.Platform
	resources := make([]resource, 0, len(send)+len(recv))
	for _, members := range send {
		if len(members) > 0 {
			resources = append(resources, resource{capacity: p.T1 / 8, flows: members})
		}
	}
	for _, members := range recv {
		if len(members) > 0 {
			resources = append(resources, resource{capacity: p.T2 / 8, flows: members})
		}
	}
	rates := maxMinRates(numFlows, w, resources)
	total := 0.0
	for _, r := range rates {
		total += r
	}
	return total
}

package netsim

import (
	"math"
	"testing"
)

func TestProfileValidate(t *testing.T) {
	if err := (Profile{}).Validate(); err != nil {
		t.Fatal("empty profile should validate")
	}
	if err := (Profile{{Duration: 1, Backbone: 1}}).Validate(); err != nil {
		t.Fatal(err)
	}
	if (Profile{{Duration: 0, Backbone: 1}}).Validate() == nil {
		t.Fatal("zero duration accepted")
	}
	if (Profile{{Duration: 1, Backbone: 0}}).Validate() == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestProfileCapacityAt(t *testing.T) {
	p := Profile{
		{Duration: 10, Backbone: 100},
		{Duration: 5, Backbone: 40},
		{Duration: 1, Backbone: 70},
	}
	cases := []struct {
		t    float64
		want float64
	}{
		{0, 100}, {9.99, 100}, {10, 40}, {14.9, 40}, {15, 70}, {16, 70}, {1000, 70},
	}
	for _, tc := range cases {
		if got := p.CapacityAt(tc.t, 1); got != tc.want {
			t.Fatalf("CapacityAt(%g) = %g, want %g", tc.t, got, tc.want)
		}
	}
	if got := (Profile{}).CapacityAt(5, 123); got != 123 {
		t.Fatalf("empty profile should fall back to default, got %g", got)
	}
}

func TestProfileNextChangeAfter(t *testing.T) {
	p := Profile{
		{Duration: 10, Backbone: 100},
		{Duration: 5, Backbone: 40},
		{Duration: 1, Backbone: 70},
	}
	if got := p.NextChangeAfter(0); got != 10 {
		t.Fatalf("next after 0 = %g, want 10", got)
	}
	if got := p.NextChangeAfter(10); got != 15 {
		t.Fatalf("next after 10 = %g, want 15", got)
	}
	if got := p.NextChangeAfter(15); !math.IsInf(got, 1) {
		t.Fatalf("next after last boundary = %g, want +Inf", got)
	}
	if got := (Profile{}).NextChangeAfter(0); !math.IsInf(got, 1) {
		t.Fatalf("empty profile next = %g, want +Inf", got)
	}
}

func TestSimulatorRejectsBadProfile(t *testing.T) {
	cfg := Config{Platform: PaperTestbed(3), BackboneProfile: Profile{{Duration: -1, Backbone: 1}}}
	if _, err := New(cfg); err == nil {
		t.Fatal("bad profile accepted")
	}
}

func TestDrainAcrossCapacityDrop(t *testing.T) {
	// One flow of 15 MB; backbone 80 Mbit (10 MB/s) for 1 s, then
	// 40 Mbit (5 MB/s). NICs are faster. Expected: 10 MB in the first
	// second, the remaining 5 MB at 5 MB/s -> total 2 s.
	p := Platform{N1: 1, N2: 1, T1: 800 * Mbit, T2: 800 * Mbit, Backbone: 80 * Mbit}
	sim, err := New(Config{
		Platform: p,
		BackboneProfile: Profile{
			{Duration: 1, Backbone: 80 * Mbit},
			{Duration: 1000, Backbone: 40 * Mbit},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.BruteForce([]Flow{{Src: 0, Dst: 0, Bytes: 15 * MB}})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, res.Time, 2.0, 1e-9, "capacity drop mid-flow")
}

func TestDrainAcrossCapacityRise(t *testing.T) {
	// 15 MB at 5 MB/s for 1 s (5 MB), then 10 MB/s for the last 10 MB.
	p := Platform{N1: 1, N2: 1, T1: 800 * Mbit, T2: 800 * Mbit, Backbone: 80 * Mbit}
	sim, err := New(Config{
		Platform: p,
		BackboneProfile: Profile{
			{Duration: 1, Backbone: 40 * Mbit},
			{Duration: 1000, Backbone: 80 * Mbit},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.BruteForce([]Flow{{Src: 0, Dst: 0, Bytes: 15 * MB}})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, res.Time, 2.0, 1e-9, "capacity rise mid-flow")
}

func TestRunStepsFromOffsetsProfile(t *testing.T) {
	// The same step executed before and after a capacity drop must take
	// different times.
	p := Platform{N1: 2, N2: 2, T1: 800 * Mbit, T2: 800 * Mbit, Backbone: 80 * Mbit}
	sim, err := New(Config{
		Platform: p,
		BackboneProfile: Profile{
			{Duration: 100, Backbone: 80 * Mbit},
			{Duration: 1000, Backbone: 20 * Mbit},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	step := [][]Flow{{{Src: 0, Dst: 0, Bytes: 10 * MB}}}
	early, err := sim.RunStepsFrom(step, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	late, err := sim.RunStepsFrom(step, 0, 200)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, early.Time, 1.0, 1e-9, "step at full capacity")
	approx(t, late.Time, 4.0, 1e-9, "step at quarter capacity")
	if _, err := sim.RunStepsFrom(step, 0, -1); err == nil {
		t.Fatal("negative start accepted")
	}
}

func TestRunStepsCongestedPaysForOversubscription(t *testing.T) {
	// Four disjoint flows in one step against a backbone that only fits
	// two: the congested run must be slower than the ideal fluid run.
	p := PaperTestbed(2) // NICs 50 Mbit, backbone 100 Mbit
	step := [][]Flow{{
		{Src: 0, Dst: 0, Bytes: 10 * MB},
		{Src: 1, Dst: 1, Bytes: 10 * MB},
		{Src: 2, Dst: 2, Bytes: 10 * MB},
		{Src: 3, Dst: 3, Bytes: 10 * MB},
	}}
	idealSim, err := New(Config{Platform: p})
	if err != nil {
		t.Fatal(err)
	}
	congSim, err := New(Config{Platform: p, CongestionAlpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	ideal, err := idealSim.RunSteps(step, 0)
	if err != nil {
		t.Fatal(err)
	}
	cong, err := congSim.RunStepsCongested(step, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cong.Time <= ideal.Time {
		t.Fatalf("congested %g not slower than ideal %g", cong.Time, ideal.Time)
	}
	// A step within capacity pays nothing.
	small := [][]Flow{{{Src: 0, Dst: 0, Bytes: 10 * MB}, {Src: 1, Dst: 1, Bytes: 10 * MB}}}
	a, err := idealSim.RunSteps(small, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := congSim.RunStepsCongested(small, 0)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, b.Time, a.Time, 1e-9, "non-oversubscribed step")
}

package netsim

import (
	"fmt"
	"math"
)

// AsyncComm is one communication of a dependency-DAG execution: Flow plus
// the indices of the comms that must complete before it starts.
type AsyncComm struct {
	Flow
	Deps []int
}

// AsyncResult reports a dependency-DAG execution.
type AsyncResult struct {
	// Time is the completion time of the last communication in seconds.
	Time float64
	// Start and End give each communication's setup-start and transfer-
	// completion times (setup occupies the slot for Beta seconds before
	// bytes flow).
	Start, End []float64
	// MaxConcurrency is the largest number of simultaneously started
	// (setup or transferring) communications observed; it never exceeds
	// the k passed to RunAsync.
	MaxConcurrency int
}

// asyncState is a communication's lifecycle position.
type asyncState int

const (
	asyncWaiting asyncState = iota // dependencies outstanding
	asyncQueued                    // ready, waiting for a slot
	asyncSetup                     // slot held, paying the β setup delay
	asyncActive                    // transferring
	asyncDone
)

// RunAsync executes communications as a dependency DAG with weakened
// barriers (the post-processing the paper's §2.1 alludes to): a comm
// starts as soon as its dependencies are done *and* one of k backbone
// slots is free, pays beta seconds of setup while holding its slot, then
// transfers through the fluid network shared with every other active
// comm. Ready comms acquire slots in index order (step order), which
// keeps the execution fair to the original schedule.
func (s *Simulator) RunAsync(comms []AsyncComm, k int, beta float64) (AsyncResult, error) {
	if k <= 0 {
		return AsyncResult{}, fmt.Errorf("netsim: k must be positive, got %d", k)
	}
	if beta < 0 {
		return AsyncResult{}, fmt.Errorf("netsim: negative beta %g", beta)
	}
	flows := make([]Flow, len(comms))
	for i, c := range comms {
		flows[i] = c.Flow
	}
	if err := s.validateFlows(flows); err != nil {
		return AsyncResult{}, err
	}
	for i, c := range comms {
		for _, d := range c.Deps {
			if d < 0 || d >= i {
				return AsyncResult{}, fmt.Errorf("netsim: comm %d has non-backward dependency %d", i, d)
			}
		}
	}

	n := len(comms)
	res := AsyncResult{
		Start: make([]float64, n),
		End:   make([]float64, n),
	}
	if n == 0 {
		return res, nil
	}

	state := make([]asyncState, n)
	blockers := make([]int, n) // outstanding dependency count
	dependents := make([][]int, n)
	for i, c := range comms {
		blockers[i] = len(c.Deps)
		for _, d := range c.Deps {
			dependents[d] = append(dependents[d], i)
		}
	}
	remaining := make([]float64, n)
	setupEnd := make([]float64, n)
	for i, c := range comms {
		remaining[i] = c.Bytes
	}

	p := s.cfg.Platform
	nicSend := p.T1 / 8
	nicRecv := p.T2 / 8

	now := 0.0
	done := 0
	slotsUsed := 0

	// promote moves ready comms into slots (setup state), in index order.
	promote := func() {
		for i := 0; i < n && slotsUsed < k; i++ {
			if state[i] != asyncQueued {
				continue
			}
			state[i] = asyncSetup
			setupEnd[i] = now + beta
			res.Start[i] = now
			slotsUsed++
		}
		inUse := slotsUsed
		if inUse > res.MaxConcurrency {
			res.MaxConcurrency = inUse
		}
	}
	finish := func(i int) {
		state[i] = asyncDone
		res.End[i] = now
		done++
		slotsUsed--
		for _, dep := range dependents[i] {
			blockers[dep]--
			if blockers[dep] == 0 && state[dep] == asyncWaiting {
				state[dep] = asyncQueued
			}
		}
	}

	for i := range comms {
		if blockers[i] == 0 {
			state[i] = asyncQueued
		}
	}
	promote()

	maxEvents := 6*n + 2*len(s.cfg.BackboneProfile) + 8
	for event := 0; done < n; event++ {
		if event > maxEvents {
			return AsyncResult{}, fmt.Errorf("netsim: async execution did not converge after %d events", event)
		}
		// Zero-byte comms in setup complete the moment setup ends; handle
		// transitions whose time is "now" first.
		progressed := false
		for i := range comms {
			switch state[i] {
			case asyncSetup:
				if setupEnd[i] <= now {
					if remaining[i] <= 0 {
						finish(i)
					} else {
						state[i] = asyncActive
					}
					progressed = true
				}
			case asyncActive:
				if remaining[i] <= 0 {
					finish(i)
					progressed = true
				}
			}
		}
		if progressed {
			promote()
			continue
		}

		// Fluid rates for active comms.
		idx := make([]int, 0, n)
		for i := range comms {
			if state[i] == asyncActive {
				idx = append(idx, i)
			}
		}
		var rates []float64
		if len(idx) > 0 {
			w := make([]float64, len(idx))
			for j := range w {
				w[j] = 1
			}
			send := make([][]int, p.N1)
			recv := make([][]int, p.N2)
			all := make([]int, len(idx))
			for j, i := range idx {
				send[comms[i].Src] = append(send[comms[i].Src], j)
				recv[comms[i].Dst] = append(recv[comms[i].Dst], j)
				all[j] = j
			}
			resources := make([]resource, 0, p.N1+p.N2+1)
			for _, members := range send {
				if len(members) > 0 {
					resources = append(resources, resource{capacity: nicSend, flows: members})
				}
			}
			for _, members := range recv {
				if len(members) > 0 {
					resources = append(resources, resource{capacity: nicRecv, flows: members})
				}
			}
			bb := s.cfg.BackboneProfile.CapacityAt(now, p.Backbone) / 8
			resources = append(resources, resource{capacity: bb, flows: all})
			rates = maxMinRates(len(idx), w, resources)
		}

		// Next event: a transfer completion, a setup completion, or a
		// backbone capacity change.
		dt := math.Inf(1)
		for j, i := range idx {
			if rates[j] <= 0 {
				return AsyncResult{}, fmt.Errorf("netsim: comm %d allocated zero rate", i)
			}
			if t := remaining[i] / rates[j]; t < dt {
				dt = t
			}
		}
		for i := range comms {
			if state[i] == asyncSetup && setupEnd[i]-now < dt {
				dt = setupEnd[i] - now
			}
		}
		if next := s.cfg.BackboneProfile.NextChangeAfter(now); next-now < dt {
			dt = next - now
		}
		if math.IsInf(dt, 1) {
			return AsyncResult{}, fmt.Errorf("netsim: async execution stalled with %d/%d comms done", done, n)
		}
		if dt < 0 {
			dt = 0
		}
		now += dt
		for j, i := range idx {
			remaining[i] -= rates[j] * dt
			if remaining[i] <= 1e-6 {
				remaining[i] = 0
			}
		}
	}
	res.Time = now
	return res, nil
}

package netsim

import (
	"fmt"
	"math"
)

// ProfileSegment is one piece of a piecewise-constant backbone
// throughput profile: the backbone runs at Backbone bits/s for Duration
// seconds before the next segment starts. The last segment's capacity
// extends forever regardless of its duration.
type ProfileSegment struct {
	Duration float64 // seconds; must be positive
	Backbone float64 // bits/s; must be positive
}

// Profile is a piecewise-constant backbone capacity over time — the
// paper's §6 "throughput of the backbone varies dynamically" scenario.
// An empty profile means the platform's constant Backbone value.
type Profile []ProfileSegment

// Validate reports whether every segment is well-formed.
func (p Profile) Validate() error {
	for i, seg := range p {
		if seg.Duration <= 0 {
			return fmt.Errorf("netsim: profile segment %d has non-positive duration %g", i, seg.Duration)
		}
		if seg.Backbone <= 0 {
			return fmt.Errorf("netsim: profile segment %d has non-positive capacity %g", i, seg.Backbone)
		}
	}
	return nil
}

// CapacityAt returns the backbone capacity in bits/s at absolute time t,
// falling back to def when the profile is empty. Past the last segment
// the last capacity persists.
func (p Profile) CapacityAt(t, def float64) float64 {
	if len(p) == 0 {
		return def
	}
	elapsed := 0.0
	for _, seg := range p {
		elapsed += seg.Duration
		if t < elapsed {
			return seg.Backbone
		}
	}
	return p[len(p)-1].Backbone
}

// NextChangeAfter returns the absolute time of the first capacity change
// strictly after t, or +Inf if none remains.
func (p Profile) NextChangeAfter(t float64) float64 {
	elapsed := 0.0
	for i, seg := range p {
		elapsed += seg.Duration
		if i == len(p)-1 {
			break // last segment extends forever: no change at its end
		}
		if elapsed > t {
			return elapsed
		}
	}
	return math.Inf(1)
}

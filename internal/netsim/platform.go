// Package netsim is a fluid-flow discrete-event simulator of the paper's
// experimental platform (§2.1, Figure 1): two clusters whose nodes have
// rate-limited network cards, interconnected by a backbone of finite
// throughput. It substitutes for the paper's real testbed (two 10-node
// Linux clusters, MPICH, and the rshaper kernel module) — see DESIGN.md §5
// for the substitution argument.
//
// Each transfer is modeled as a fluid flow traversing three capacitated
// resources — the sender's NIC, the backbone, and the receiver's NIC —
// with instantaneous (weighted) max-min fair rate allocation. The event
// loop advances to the next flow completion and re-allocates.
//
// Two execution modes mirror the paper's §5.2 comparison:
//
//   - BruteForce: all flows start simultaneously and TCP is left to manage
//     congestion. A documented congestion model derates the backbone when
//     it is oversubscribed and applies seeded per-flow unfairness jitter,
//     reproducing TCP's loss/backoff cost and its run-to-run variance.
//   - RunSteps: the schedule's steps run one after another, separated by
//     barriers costing β seconds each. A step never oversubscribes the
//     backbone (at most k flows), so no congestion model applies.
package netsim

import (
	"fmt"
	"math"
)

// Convenient unit multipliers. Throughputs are bits per second; data sizes
// are bytes.
const (
	Kbit = 1e3
	Mbit = 1e6
	Gbit = 1e9

	KB = 1e3
	MB = 1e6
	GB = 1e9
)

// Platform describes the redistribution architecture of paper Figure 1.
type Platform struct {
	// N1, N2 are the node counts of clusters C1 (senders) and C2
	// (receivers).
	N1, N2 int
	// T1, T2 are the effective per-node NIC throughputs in bits/s.
	T1, T2 float64
	// Backbone is the backbone throughput T in bits/s.
	Backbone float64
}

// Validate reports whether the platform parameters are usable.
func (p Platform) Validate() error {
	if p.N1 <= 0 || p.N2 <= 0 {
		return fmt.Errorf("netsim: node counts must be positive, got %d and %d", p.N1, p.N2)
	}
	if p.T1 <= 0 || p.T2 <= 0 || p.Backbone <= 0 {
		return fmt.Errorf("netsim: throughputs must be positive, got t1=%g t2=%g T=%g", p.T1, p.T2, p.Backbone)
	}
	return nil
}

// Speed returns t, the bits/s achieved by a single communication: the
// minimum of the two NIC rates and the backbone rate (paper §2.1).
func (p Platform) Speed() float64 {
	return math.Min(math.Min(p.T1, p.T2), p.Backbone)
}

// K returns the maximum number of simultaneous communications that avoid
// congestion (paper §2.1): the largest k with k·t ≤ T, k ≤ n1 and k ≤ n2,
// where t is the per-communication speed. It is at least 1. For the
// paper's example (n1=200, n2=100, t1=10 Mbit/s, t2=100 Mbit/s, T=1
// Gbit/s) it returns 100.
func (p Platform) K() int {
	k := int(p.Backbone / p.Speed())
	if k > p.N1 {
		k = p.N1
	}
	if k > p.N2 {
		k = p.N2
	}
	if k < 1 {
		k = 1
	}
	return k
}

// PaperTestbed returns the platform of the paper's real-world experiments
// (§5.2): two clusters of ten nodes with 100 Mbit Ethernet, NICs shaped to
// 100/k Mbit/s with rshaper so that k communications exactly fill the
// 100 Mbit backbone.
func PaperTestbed(k int) Platform {
	if k < 1 {
		k = 1
	}
	shaped := 100 * Mbit / float64(k)
	return Platform{N1: 10, N2: 10, T1: shaped, T2: shaped, Backbone: 100 * Mbit}
}

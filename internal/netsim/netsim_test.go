package netsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %g, want %g (±%g)", msg, got, want, tol)
	}
}

func TestPlatformSpeedAndK(t *testing.T) {
	// The paper's §2.1 worked example: n1=200, n2=100, t1=10 Mbit/s,
	// t2=100 Mbit/s, T=1 Gbit/s -> k=100, t=10 Mbit/s.
	p := Platform{N1: 200, N2: 100, T1: 10 * Mbit, T2: 100 * Mbit, Backbone: 1 * Gbit}
	if p.Speed() != 10*Mbit {
		t.Fatalf("Speed = %g, want 10 Mbit", p.Speed())
	}
	if p.K() != 100 {
		t.Fatalf("K = %d, want 100", p.K())
	}
}

func TestPlatformKClampedByNodes(t *testing.T) {
	p := Platform{N1: 3, N2: 8, T1: 10 * Mbit, T2: 10 * Mbit, Backbone: 1 * Gbit}
	if p.K() != 3 {
		t.Fatalf("K = %d, want 3 (node-limited)", p.K())
	}
}

func TestPlatformKAtLeastOne(t *testing.T) {
	// Backbone slower than a single NIC: still one communication at a time.
	p := Platform{N1: 4, N2: 4, T1: 100 * Mbit, T2: 100 * Mbit, Backbone: 10 * Mbit}
	if p.K() != 1 {
		t.Fatalf("K = %d, want 1", p.K())
	}
	if p.Speed() != 10*Mbit {
		t.Fatalf("Speed = %g, want backbone-limited 10 Mbit", p.Speed())
	}
}

func TestPaperTestbed(t *testing.T) {
	p := PaperTestbed(5)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.K() != 5 {
		t.Fatalf("K = %d, want 5 (rshaper-shaped NICs)", p.K())
	}
	if PaperTestbed(0).K() != 1 {
		t.Fatal("PaperTestbed should clamp k to 1")
	}
}

func TestPlatformValidate(t *testing.T) {
	bad := []Platform{
		{N1: 0, N2: 1, T1: 1, T2: 1, Backbone: 1},
		{N1: 1, N2: 0, T1: 1, T2: 1, Backbone: 1},
		{N1: 1, N2: 1, T1: 0, T2: 1, Backbone: 1},
		{N1: 1, N2: 1, T1: 1, T2: -1, Backbone: 1},
		{N1: 1, N2: 1, T1: 1, T2: 1, Backbone: 0},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Fatalf("case %d: invalid platform accepted", i)
		}
	}
}

func ideal(p Platform) Config { return Config{Platform: p} }

func TestSingleFlowRate(t *testing.T) {
	p := Platform{N1: 1, N2: 1, T1: 80 * Mbit, T2: 100 * Mbit, Backbone: 1 * Gbit}
	sim, err := New(ideal(p))
	if err != nil {
		t.Fatal(err)
	}
	// 10 MB over min(80 Mbit/s)=10 MB/s -> 1 s.
	res, err := sim.BruteForce([]Flow{{Src: 0, Dst: 0, Bytes: 10 * MB}})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, res.Time, 1.0, 1e-9, "single flow time")
}

func TestDisjointFlowsRunInParallel(t *testing.T) {
	p := Platform{N1: 4, N2: 4, T1: 8 * Mbit, T2: 8 * Mbit, Backbone: 1 * Gbit}
	sim, err := New(ideal(p))
	if err != nil {
		t.Fatal(err)
	}
	flows := []Flow{
		{0, 0, 1 * MB}, {1, 1, 1 * MB}, {2, 2, 1 * MB}, {3, 3, 1 * MB},
	}
	res, err := sim.BruteForce(flows)
	if err != nil {
		t.Fatal(err)
	}
	// Each NIC does 1 MB/s; disjoint pairs, huge backbone -> 1 s total.
	approx(t, res.Time, 1.0, 1e-9, "disjoint flows")
}

func TestSharedSenderHalvesRates(t *testing.T) {
	p := Platform{N1: 1, N2: 2, T1: 8 * Mbit, T2: 8 * Mbit, Backbone: 1 * Gbit}
	sim, err := New(ideal(p))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.BruteForce([]Flow{{0, 0, 1 * MB}, {0, 1, 1 * MB}})
	if err != nil {
		t.Fatal(err)
	}
	// Sender NIC 1 MB/s shared by two flows: 0.5 MB/s each -> 2 s.
	approx(t, res.Time, 2.0, 1e-9, "shared sender")
}

func TestBackboneBottleneckSharing(t *testing.T) {
	p := Platform{N1: 2, N2: 2, T1: 80 * Mbit, T2: 80 * Mbit, Backbone: 80 * Mbit}
	sim, err := New(ideal(p))
	if err != nil {
		t.Fatal(err)
	}
	// Two disjoint flows of 10 MB share an 10 MB/s backbone: 5 MB/s each.
	res, err := sim.BruteForce([]Flow{{0, 0, 10 * MB}, {1, 1, 10 * MB}})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, res.Time, 2.0, 1e-9, "backbone shared")
}

func TestUnequalFlowsFreeCapacityWhenDone(t *testing.T) {
	// Two flows share the backbone; when the short one finishes, the long
	// one speeds up to NIC rate.
	p := Platform{N1: 2, N2: 2, T1: 80 * Mbit, T2: 80 * Mbit, Backbone: 80 * Mbit}
	sim, err := New(ideal(p))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.BruteForce([]Flow{{0, 0, 5 * MB}, {1, 1, 15 * MB}})
	if err != nil {
		t.Fatal(err)
	}
	// Phase 1: both at 5 MB/s until the 5 MB flow ends (t=1 s, long flow
	// has 10 MB left). Phase 2: long flow alone at 10 MB/s -> 1 more s.
	approx(t, res.Time, 2.0, 1e-9, "two-phase completion")
}

func TestZeroByteFlowsIgnored(t *testing.T) {
	p := PaperTestbed(1)
	sim, err := New(ideal(p))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.BruteForce([]Flow{{0, 0, 0}, {1, 1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, res.Time, 0, 1e-12, "all-zero flows")
}

func TestFlowValidation(t *testing.T) {
	sim, err := New(ideal(PaperTestbed(3)))
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]Flow{
		{{Src: -1, Dst: 0, Bytes: 1}},
		{{Src: 10, Dst: 0, Bytes: 1}},
		{{Src: 0, Dst: -1, Bytes: 1}},
		{{Src: 0, Dst: 10, Bytes: 1}},
		{{Src: 0, Dst: 0, Bytes: -5}},
		{{Src: 0, Dst: 0, Bytes: math.NaN()}},
		{{Src: 0, Dst: 0, Bytes: math.Inf(1)}},
	}
	for i, flows := range bad {
		if _, err := sim.BruteForce(flows); err == nil {
			t.Fatalf("case %d: invalid flow accepted", i)
		}
		if _, err := sim.RunSteps([][]Flow{flows}, 0); err == nil {
			t.Fatalf("case %d: invalid step flow accepted", i)
		}
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{Platform: Platform{}}); err == nil {
		t.Fatal("zero platform accepted")
	}
	cfg := ideal(PaperTestbed(3))
	cfg.CongestionAlpha = -1
	if _, err := New(cfg); err == nil {
		t.Fatal("negative alpha accepted")
	}
	cfg = ideal(PaperTestbed(3))
	cfg.JitterSigma = -1
	if _, err := New(cfg); err == nil {
		t.Fatal("negative sigma accepted")
	}
}

func TestRunStepsAddsBarriers(t *testing.T) {
	p := Platform{N1: 2, N2: 2, T1: 8 * Mbit, T2: 8 * Mbit, Backbone: 1 * Gbit}
	sim, err := New(ideal(p))
	if err != nil {
		t.Fatal(err)
	}
	steps := [][]Flow{
		{{0, 0, 1 * MB}, {1, 1, 1 * MB}}, // 1 s
		{{0, 1, 2 * MB}},                 // 2 s
	}
	res, err := sim.RunSteps(steps, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 2 || len(res.StepTimes) != 2 {
		t.Fatalf("steps = %d, StepTimes = %v", res.Steps, res.StepTimes)
	}
	approx(t, res.StepTimes[0], 1.0, 1e-9, "step 1")
	approx(t, res.StepTimes[1], 2.0, 1e-9, "step 2")
	approx(t, res.Time, 4.0, 1e-9, "total with two 0.5s barriers")
	if _, err := sim.RunSteps(steps, -1); err == nil {
		t.Fatal("negative beta accepted")
	}
}

func TestCongestionDeratingSlowsBruteForce(t *testing.T) {
	// k=3 testbed: 10x10 all-pairs traffic oversubscribes the backbone
	// 10/3 times. With the TCP model the brute force must be slower than
	// the ideal fluid bound; without it, not.
	p := PaperTestbed(3)
	flows := make([]Flow, 0, 100)
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			flows = append(flows, Flow{Src: i, Dst: j, Bytes: 1 * MB})
		}
	}
	idealSim, err := New(ideal(p))
	if err != nil {
		t.Fatal(err)
	}
	idealRes, err := idealSim.BruteForce(flows)
	if err != nil {
		t.Fatal(err)
	}
	tcpSim, err := New(DefaultConfig(p, 1))
	if err != nil {
		t.Fatal(err)
	}
	tcpRes, err := tcpSim.BruteForce(flows)
	if err != nil {
		t.Fatal(err)
	}
	if tcpRes.Time <= idealRes.Time {
		t.Fatalf("TCP model %.3fs not slower than ideal %.3fs", tcpRes.Time, idealRes.Time)
	}
	// Ideal aggregate is backbone-limited: 100 MB over 12.5 MB/s = 8 s.
	approx(t, idealRes.Time, 8.0, 1e-6, "ideal backbone-limited time")
}

func TestBruteForceNondeterministicAcrossSeeds(t *testing.T) {
	// The paper reports up to ~10% run-to-run variation for brute-force
	// TCP and exact determinism for the scheduled approach.
	p := PaperTestbed(3)
	flows := make([]Flow, 0, 100)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			flows = append(flows, Flow{Src: i, Dst: j, Bytes: float64(10+rng.Intn(30)) * MB})
		}
	}
	times := map[float64]bool{}
	for seed := int64(0); seed < 5; seed++ {
		sim, err := New(DefaultConfig(p, seed))
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.BruteForce(flows)
		if err != nil {
			t.Fatal(err)
		}
		times[res.Time] = true
	}
	if len(times) < 2 {
		t.Fatal("brute force produced identical times across seeds; jitter model inactive")
	}
	// Same seed must reproduce exactly.
	a, _ := New(DefaultConfig(p, 7))
	b, _ := New(DefaultConfig(p, 7))
	ra, err := a.BruteForce(flows)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.BruteForce(flows)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Time != rb.Time {
		t.Fatalf("same seed diverged: %g vs %g", ra.Time, rb.Time)
	}
}

func TestQuickFluidConservation(t *testing.T) {
	// Completion time must always lie between the single-flow optimum and
	// the fully serialized bound, and never be slower than total bytes at
	// the slowest-resource rate.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Platform{
			N1: 1 + rng.Intn(6), N2: 1 + rng.Intn(6),
			T1:       float64(1+rng.Intn(100)) * Mbit,
			T2:       float64(1+rng.Intn(100)) * Mbit,
			Backbone: float64(1+rng.Intn(1000)) * Mbit,
		}
		sim, err := New(ideal(p))
		if err != nil {
			return false
		}
		n := 1 + rng.Intn(12)
		flows := make([]Flow, n)
		var total float64
		for i := range flows {
			flows[i] = Flow{
				Src:   rng.Intn(p.N1),
				Dst:   rng.Intn(p.N2),
				Bytes: float64(1+rng.Intn(50)) * MB,
			}
			total += flows[i].Bytes
		}
		res, err := sim.BruteForce(flows)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		// Lower bound: all bytes through the backbone at full speed, and
		// every flow alone at single-communication speed.
		lower := total / (p.Backbone / 8)
		if alt := maxFlowLower(flows, p); alt > lower {
			lower = alt
		}
		// Upper bound: strictly serial at single-communication speed.
		upper := total/(p.Speed()/8) + 1e-6
		return res.Time >= lower-1e-6 && res.Time <= upper
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// maxFlowLower returns the largest per-flow lower bound: a flow can never
// finish faster than alone at the single-communication speed.
func maxFlowLower(flows []Flow, p Platform) float64 {
	speed := p.Speed() / 8
	best := 0.0
	for _, f := range flows {
		if t := f.Bytes / speed; t > best {
			best = t
		}
	}
	return best
}

func TestMaxMinRatesHandCase(t *testing.T) {
	// Three flows: 0 and 1 share resource A (cap 10); 1 and 2 share
	// resource B (cap 30). Max-min: flow 0 and 1 get 5 (A saturates);
	// flow 2 then gets 25 from B.
	rates := maxMinRates(3, []float64{1, 1, 1}, []resource{
		{capacity: 10, flows: []int{0, 1}},
		{capacity: 30, flows: []int{1, 2}},
	})
	approx(t, rates[0], 5, 1e-9, "flow 0")
	approx(t, rates[1], 5, 1e-9, "flow 1")
	approx(t, rates[2], 25, 1e-9, "flow 2")
}

func TestMaxMinRatesWeighted(t *testing.T) {
	// One resource of cap 12 shared by weights 1 and 2: rates 4 and 8.
	rates := maxMinRates(2, []float64{1, 2}, []resource{
		{capacity: 12, flows: []int{0, 1}},
	})
	approx(t, rates[0], 4, 1e-9, "weight-1 flow")
	approx(t, rates[1], 8, 1e-9, "weight-2 flow")
}

func TestQuickMaxMinFeasibleAndSaturating(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = 0.1 + rng.Float64()*3
		}
		nr := 1 + rng.Intn(5)
		resources := make([]resource, nr)
		covered := make([]bool, n)
		for r := range resources {
			resources[r].capacity = 1 + rng.Float64()*100
			for f := 0; f < n; f++ {
				if rng.Intn(2) == 0 {
					resources[r].flows = append(resources[r].flows, f)
					covered[f] = true
				}
			}
		}
		// Ensure every flow is covered by at least one resource (the
		// simulator always includes the backbone over all flows).
		last := resource{capacity: 50}
		for f := 0; f < n; f++ {
			last.flows = append(last.flows, f)
		}
		resources = append(resources, last)

		rates := maxMinRates(n, weights, resources)
		// Feasibility.
		for _, r := range resources {
			sum := 0.0
			for _, f := range r.flows {
				sum += rates[f]
			}
			if sum > r.capacity*(1+1e-9)+1e-9 {
				return false
			}
		}
		// Every flow has positive rate, and at least one resource is
		// saturated (no capacity left on the table globally).
		for _, rt := range rates {
			if rt <= 0 {
				return false
			}
		}
		saturated := false
		for _, r := range resources {
			sum := 0.0
			for _, f := range r.flows {
				sum += rates[f]
			}
			if sum >= r.capacity*(1-1e-9) {
				saturated = true
			}
		}
		return saturated
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

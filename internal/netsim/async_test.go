package netsim

import (
	"testing"
)

func asyncTestPlatform() Platform {
	return Platform{N1: 4, N2: 4, T1: 8 * Mbit, T2: 8 * Mbit, Backbone: 1 * Gbit}
}

func TestRunAsyncIndependentCommsOverlap(t *testing.T) {
	sim, err := New(Config{Platform: asyncTestPlatform()})
	if err != nil {
		t.Fatal(err)
	}
	comms := []AsyncComm{
		{Flow: Flow{Src: 0, Dst: 0, Bytes: 1 * MB}},
		{Flow: Flow{Src: 1, Dst: 1, Bytes: 1 * MB}},
	}
	res, err := sim.RunAsync(comms, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Both at 1 MB/s in parallel: 1 s total.
	approx(t, res.Time, 1.0, 1e-9, "independent comms")
	if res.MaxConcurrency != 2 {
		t.Fatalf("concurrency = %d, want 2", res.MaxConcurrency)
	}
}

func TestRunAsyncDependencySequencing(t *testing.T) {
	sim, err := New(Config{Platform: asyncTestPlatform()})
	if err != nil {
		t.Fatal(err)
	}
	comms := []AsyncComm{
		{Flow: Flow{Src: 0, Dst: 0, Bytes: 1 * MB}},
		{Flow: Flow{Src: 0, Dst: 1, Bytes: 1 * MB}, Deps: []int{0}},
	}
	res, err := sim.RunAsync(comms, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, res.Time, 2.0, 1e-9, "chained comms")
	if res.Start[1] < res.End[0]-1e-9 {
		t.Fatalf("dependent comm started at %g before dep ended at %g", res.Start[1], res.End[0])
	}
}

func TestRunAsyncRespectsSlots(t *testing.T) {
	sim, err := New(Config{Platform: asyncTestPlatform()})
	if err != nil {
		t.Fatal(err)
	}
	comms := []AsyncComm{
		{Flow: Flow{Src: 0, Dst: 0, Bytes: 1 * MB}},
		{Flow: Flow{Src: 1, Dst: 1, Bytes: 1 * MB}},
		{Flow: Flow{Src: 2, Dst: 2, Bytes: 1 * MB}},
	}
	res, err := sim.RunAsync(comms, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxConcurrency != 1 {
		t.Fatalf("concurrency = %d, want 1 with k=1", res.MaxConcurrency)
	}
	approx(t, res.Time, 3.0, 1e-9, "serialized by slots")
}

func TestRunAsyncSetupDelay(t *testing.T) {
	sim, err := New(Config{Platform: asyncTestPlatform()})
	if err != nil {
		t.Fatal(err)
	}
	comms := []AsyncComm{{Flow: Flow{Src: 0, Dst: 0, Bytes: 1 * MB}}}
	res, err := sim.RunAsync(comms, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, res.Time, 1.5, 1e-9, "setup + transfer")
}

func TestRunAsyncZeroByteComm(t *testing.T) {
	sim, err := New(Config{Platform: asyncTestPlatform()})
	if err != nil {
		t.Fatal(err)
	}
	comms := []AsyncComm{
		{Flow: Flow{Src: 0, Dst: 0, Bytes: 0}},
		{Flow: Flow{Src: 0, Dst: 1, Bytes: 1 * MB}, Deps: []int{0}},
	}
	res, err := sim.RunAsync(comms, 2, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, res.Time, 1.5, 1e-9, "zero-byte dep + setup chain")
}

func TestRunAsyncValidation(t *testing.T) {
	sim, err := New(Config{Platform: asyncTestPlatform()})
	if err != nil {
		t.Fatal(err)
	}
	ok := []AsyncComm{{Flow: Flow{Src: 0, Dst: 0, Bytes: 1}}}
	if _, err := sim.RunAsync(ok, 0, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := sim.RunAsync(ok, 1, -1); err == nil {
		t.Fatal("negative beta accepted")
	}
	bad := []AsyncComm{
		{Flow: Flow{Src: 0, Dst: 0, Bytes: 1}},
		{Flow: Flow{Src: 1, Dst: 1, Bytes: 1}, Deps: []int{5}},
	}
	if _, err := sim.RunAsync(bad, 1, 0); err == nil {
		t.Fatal("forward dependency accepted")
	}
	if _, err := sim.RunAsync([]AsyncComm{{Flow: Flow{Src: -1, Dst: 0, Bytes: 1}}}, 1, 0); err == nil {
		t.Fatal("bad endpoint accepted")
	}
	empty, err := sim.RunAsync(nil, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if empty.Time != 0 {
		t.Fatal("empty plan should take no time")
	}
}

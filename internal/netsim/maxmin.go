package netsim

import "math"

// resource is one capacitated element of the network: a sender NIC, a
// receiver NIC, or the backbone.
type resource struct {
	capacity float64 // bytes/s
	flows    []int   // indices of member flows
}

// maxMinRates computes the weighted max-min fair allocation of the given
// flows over the given resources using progressive filling: every active
// flow's rate grows proportionally to its weight until some resource
// saturates, which freezes that resource's flows; repeat until all flows
// are frozen.
//
// weights must be positive. The returned rates satisfy, for every
// resource, Σ rates ≤ capacity (up to floating-point rounding), and no
// single flow can be increased without decreasing a flow of smaller or
// equal rate/weight ratio.
func maxMinRates(numFlows int, weights []float64, resources []resource) []float64 {
	rates := make([]float64, numFlows)
	frozen := make([]bool, numFlows)
	active := numFlows
	lambda := 0.0

	// Per-resource bookkeeping: capacity already consumed by frozen flows,
	// total weight of unfrozen member flows, and — to stay robust against
	// floating-point residue in the weight sums — an exact count of
	// unfrozen members.
	frozenUse := make([]float64, len(resources))
	liveWeight := make([]float64, len(resources))
	liveCount := make([]int, len(resources))
	for ri, r := range resources {
		for _, f := range r.flows {
			liveWeight[ri] += weights[f]
			liveCount[ri]++
		}
	}

	for active > 0 {
		// The next resource to saturate is the one with the smallest
		// growth factor λ_r = (cap − frozenUse) / liveWeight.
		best := -1
		bestLambda := math.Inf(1)
		for ri, r := range resources {
			if liveCount[ri] == 0 || liveWeight[ri] <= 0 {
				continue
			}
			lr := (r.capacity - frozenUse[ri]) / liveWeight[ri]
			if lr < bestLambda {
				bestLambda = lr
				best = ri
			}
		}
		if best < 0 {
			// No resource constrains the remaining flows; they are only
			// possible if a flow belongs to no resource, which the
			// simulator never constructs. Freeze at current λ defensively.
			for f := 0; f < numFlows; f++ {
				if !frozen[f] {
					rates[f] = weights[f] * lambda
					frozen[f] = true
				}
			}
			break
		}
		if bestLambda < lambda {
			// Numerically a resource can appear oversubscribed by frozen
			// flows; clamp so rates never decrease.
			bestLambda = lambda
		}
		lambda = bestLambda
		progressed := false
		for _, f := range resources[best].flows {
			if frozen[f] {
				continue
			}
			rates[f] = weights[f] * lambda
			frozen[f] = true
			active--
			progressed = true
			// Remove the flow from every resource it uses.
			for ri, r := range resources {
				for _, ff := range r.flows {
					if ff == f {
						liveWeight[ri] -= weights[f]
						liveCount[ri]--
						frozenUse[ri] += rates[f]
						break
					}
				}
			}
		}
		if !progressed {
			// Defensive: cannot happen with liveCount bookkeeping, but an
			// infinite loop would be worse than a conservative freeze.
			for f := 0; f < numFlows; f++ {
				if !frozen[f] {
					rates[f] = weights[f] * lambda
					frozen[f] = true
					active--
				}
			}
		}
	}
	return rates
}

package redistgo_test

import (
	"math/rand"
	"testing"

	"redistgo"
)

// TestAsyncExecutionBeatsBarriers verifies the §2.1 claim end to end:
// executing a schedule as a dependency DAG (weakened barriers) is never
// slower than the barrier-synchronized execution of the same schedule,
// and strictly faster when step durations are imbalanced.
func TestAsyncExecutionBeatsBarriers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	k := 3
	platform := redistgo.PaperTestbed(k)
	matrix := redistgo.DenseUniformMatrix(rng, 10, 10,
		int64(1*redistgo.MB), int64(8*redistgo.MB))
	g, err := redistgo.FromMatrix(matrix)
	if err != nil {
		t.Fatal(err)
	}
	const betaSec = 0.002
	betaUnits := int64(betaSec * platform.Speed() / 8)
	sched, err := redistgo.Solve(g, k, betaUnits, redistgo.Options{Algorithm: redistgo.OGGP})
	if err != nil {
		t.Fatal(err)
	}

	sim, err := redistgo.NewSimulator(redistgo.SimConfig{Platform: platform})
	if err != nil {
		t.Fatal(err)
	}
	sync, err := sim.RunSteps(redistgo.FlowSteps(sched), betaSec)
	if err != nil {
		t.Fatal(err)
	}

	plan := sched.AsyncPlan()
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	async, err := sim.RunAsync(redistgo.AsyncComms(plan), k, betaSec)
	if err != nil {
		t.Fatal(err)
	}

	if async.Time > sync.Time*1.0001 {
		t.Fatalf("async %.3fs slower than synchronous %.3fs", async.Time, sync.Time)
	}
	if async.MaxConcurrency > k {
		t.Fatalf("async concurrency %d exceeded k=%d", async.MaxConcurrency, k)
	}

	// 1-port: communications sharing a node must not overlap in time.
	for i := range plan.Comms {
		for j := i + 1; j < len(plan.Comms); j++ {
			a, b := plan.Comms[i], plan.Comms[j]
			if a.L != b.L && a.R != b.R {
				continue
			}
			// Transfer intervals (setup excluded — sockets can be set up
			// while the previous transfer drains in a real system, and
			// the executor serializes transfers, which is what 1-port
			// needs).
			if async.End[i] <= async.Start[j]+betaSec+1e-9 || async.End[j] <= async.Start[i]+betaSec+1e-9 {
				continue
			}
			t.Fatalf("comms %d and %d share a node and overlap: [%g,%g] vs [%g,%g]",
				i, j, async.Start[i], async.End[i], async.Start[j], async.End[j])
		}
	}
}

// TestAsyncExecutionOverRealSockets runs a weakened-barrier plan through
// the loopback-TCP runtime: all bytes must arrive and be acknowledged.
func TestAsyncExecutionOverRealSockets(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	matrix := redistgo.DenseUniformMatrix(rng, 3, 3, 16<<10, 48<<10)
	g, err := redistgo.FromMatrix(matrix)
	if err != nil {
		t.Fatal(err)
	}
	k := 2
	sched, err := redistgo.Solve(g, k, 0, redistgo.Options{Algorithm: redistgo.OGGP})
	if err != nil {
		t.Fatal(err)
	}
	plan := sched.AsyncPlan()
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	c, err := redistgo.NewCluster(redistgo.ClusterConfig{N1: 3, N2: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	d, err := c.RunAsync(redistgo.AsyncTransfers(plan), k)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatal("non-positive duration")
	}
}

// TestAsyncStrictWinOnImbalancedSteps hand-builds a schedule in which
// each step's straggler is a different node: barriers make the fast node
// idle behind the other's straggler, the dependency DAG does not.
func TestAsyncStrictWinOnImbalancedSteps(t *testing.T) {
	platform := redistgo.Platform{
		N1: 2, N2: 4,
		T1: 10 * redistgo.Mbit, T2: 10 * redistgo.Mbit,
		Backbone: 1 * redistgo.Gbit,
	}
	long := int64(8 * redistgo.MB)  // 6.4 s at 1.25 MB/s
	short := int64(1 * redistgo.MB) // 0.8 s
	g := redistgo.NewGraph(2, 4)
	g.AddEdge(0, 0, long)
	g.AddEdge(1, 1, short)
	g.AddEdge(1, 2, long)
	g.AddEdge(0, 3, short)
	sched := &redistgo.Schedule{Steps: []redistgo.Step{
		{Comms: []redistgo.Comm{{L: 0, R: 0, Amount: long}, {L: 1, R: 1, Amount: short}}, Duration: long},
		{Comms: []redistgo.Comm{{L: 1, R: 2, Amount: long}, {L: 0, R: 3, Amount: short}}, Duration: long},
	}}
	if err := sched.Validate(g, 2); err != nil {
		t.Fatal(err)
	}
	sim, err := redistgo.NewSimulator(redistgo.SimConfig{Platform: platform})
	if err != nil {
		t.Fatal(err)
	}
	sync, err := sim.RunSteps(redistgo.FlowSteps(sched), 0)
	if err != nil {
		t.Fatal(err)
	}
	async, err := sim.RunAsync(redistgo.AsyncComms(sched.AsyncPlan()), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Synchronous: 6.4 + 6.4 = 12.8 s. Asynchronous: node 1's long
	// message starts at 0.8 s and finishes at 7.2 s.
	if async.Time >= sync.Time-1 {
		t.Fatalf("async %.3fs did not clearly beat synchronous %.3fs", async.Time, sync.Time)
	}
}

package redistgo

import (
	"redistgo/internal/aggregate"
)

// Local pre-redistribution (the paper's §6 future-work item 1): when the
// sending cluster has a fast local network, small messages can be
// gathered onto gateways before crossing the backbone, and overloaded
// senders can dispatch their load to idle peers.

// AggregateConfig parameterizes plan construction and evaluation of
// local pre-redistribution.
type AggregateConfig = aggregate.Config

// AggregatePlan is a two-phase redistribution: local moves inside the
// sending cluster followed by the transformed backbone schedule.
type AggregatePlan = aggregate.Plan

// AggregateResult compares a two-phase plan against the direct schedule.
type AggregateResult = aggregate.Result

// BuildAggregationPlan gathers every receiver column whose messages all
// weigh less than threshold onto a gateway sender, so the backbone
// carries one message per such receiver. Best when β dominates many tiny
// messages.
func BuildAggregationPlan(m [][]int64, threshold int64) (*AggregatePlan, error) {
	return aggregate.BuildAggregation(m, threshold)
}

// BuildDispatchPlan offloads whole messages from overloaded senders to
// idle peers, lowering the sending-side W(G) toward P(G)/k. Best when
// per-sender traffic is skewed.
func BuildDispatchPlan(m [][]int64) (*AggregatePlan, error) {
	return aggregate.BuildDispatch(m)
}

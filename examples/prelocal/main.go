// Local pre-redistribution (the paper's §6 future work): use the sending
// cluster's fast local network before crossing the backbone.
//
// Scenario A — aggregation: a control-plane exchange of many tiny
// messages where the per-step setup delay β dominates. Gathering each
// receiver's messages onto a gateway sender collapses the backbone
// schedule to a handful of steps.
//
// Scenario B — dispatch: one "head node" holds most of the data (a
// master-partitioned dataset). Spreading its messages across idle peers
// lowers the 1-port sending bottleneck W(G) toward P(G)/k.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"redistgo"
)

func main() {
	scenarioAggregation()
	fmt.Println()
	scenarioDispatch()
}

func scenarioAggregation() {
	fmt.Println("=== Scenario A: gateway aggregation of tiny messages ===")
	rng := rand.New(rand.NewSource(1))
	// 12x12, almost all pairs talk, 1-3 units each; β = 100 units.
	m := redistgo.SparseUniformMatrix(rng, 12, 12, 0.9, 1, 3)
	plan, err := redistgo.BuildAggregationPlan(m, 10)
	if err != nil {
		log.Fatal(err)
	}
	cfg := redistgo.AggregateConfig{K: 4, Beta: 100, LocalSpeedup: 20, LocalBeta: 1}
	res, err := plan.Evaluate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	report(res)
}

func scenarioDispatch() {
	fmt.Println("=== Scenario B: dispatching an overloaded head node ===")
	rng := rand.New(rand.NewSource(2))
	// Sender 0 is the head node holding most of the dataset; receivers
	// are evenly loaded. The sending-side 1-port constraint makes node 0
	// the bottleneck: W(G) ≫ P(G)/k.
	m := make([][]int64, 8)
	for i := range m {
		m[i] = make([]int64, 8)
		for j := range m[i] {
			if i == 0 {
				m[i][j] = 40 + rng.Int63n(20)
			} else {
				m[i][j] = 1 + rng.Int63n(4)
			}
		}
	}
	plan, err := redistgo.BuildDispatchPlan(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("local phase moves %d units between senders\n", plan.LocalBytes())
	cfg := redistgo.AggregateConfig{K: 8, Beta: 1, LocalSpeedup: 50, LocalBeta: 0}
	res, err := plan.Evaluate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	report(res)
}

func report(res redistgo.AggregateResult) {
	fmt.Printf("direct OGGP schedule : cost %5d (%d backbone steps)\n", res.DirectCost, res.DirectSteps)
	fmt.Printf("two-phase plan       : cost %5d = local %d + backbone %d (%d backbone steps)\n",
		res.PlanCost, res.LocalCost, res.BackboneCost, res.PlanSteps)
	if res.Improved() {
		fmt.Printf("improvement          : %.1f%%\n",
			100*float64(res.DirectCost-res.PlanCost)/float64(res.DirectCost))
	} else {
		fmt.Println("improvement          : none (plan not worthwhile here)")
	}
}

// Real-sockets execution: the analog of the paper's §5.2 experiment, on
// loopback TCP. A 4x4 cluster pair exchanges an all-pairs pattern; NICs
// are token-bucket shaped to backbone/k (the rshaper analog) and the
// schedule runs with genuine barriers. Sizes are small so the demo
// finishes in a few seconds.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"redistgo"
)

func main() {
	const (
		nodes    = 4
		k        = 2
		backbone = 8e6 // bytes/s shared by all transfers
	)
	rng := rand.New(rand.NewSource(42))
	matrix := redistgo.DenseUniformMatrix(rng, nodes, nodes, 64<<10, 256<<10)
	g, err := redistgo.FromMatrix(matrix)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pattern: %dx%d all-pairs, %d KB total, k=%d\n",
		nodes, nodes, redistgo.MatrixTotal(matrix)>>10, k)

	c, err := redistgo.NewCluster(redistgo.ClusterConfig{
		N1: nodes, N2: nodes,
		SendRate:     backbone / k,
		RecvRate:     backbone / k,
		BackboneRate: backbone,
		ChunkSize:    8 << 10,
		BarrierDelay: 2 * time.Millisecond,
		RealBarrier:  true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	brute, err := c.RunBruteForce(redistgo.MatrixTransfers(matrix))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("brute-force TCP : %8v\n", brute.Round(time.Millisecond))

	for _, alg := range []redistgo.Algorithm{redistgo.GGP, redistgo.OGGP} {
		// β in bytes-equivalents: 2 ms at backbone/k bytes per second.
		beta := int64(0.002 * backbone / k)
		sched, err := redistgo.Solve(g, k, beta, redistgo.Options{Algorithm: alg})
		if err != nil {
			log.Fatal(err)
		}
		d, perStep, err := c.RunSchedule(redistgo.TransferSteps(sched))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16v: %8v  (%d steps)\n", alg, d.Round(time.Millisecond), len(perStep))
	}

	fmt.Println("\nEvery byte moved through real TCP connections with shaped NICs.")
}

// Code coupling: the paper's motivating scenario (§1, §2.1). Two codes
// run on two clusters — here the paper's own worked example platform:
// 200 nodes with 10 Mbit/s cards feeding 100 nodes with 100 Mbit/s cards
// through a 1 Gbit/s backbone, so k = 100 and each communication runs at
// 10 Mbit/s. At every coupling iteration a sparse redistribution pattern
// must cross the backbone; we schedule it with GGP and OGGP and compare
// against brute-force TCP on the fluid simulator.
package main

import (
	"fmt"
	"log"

	"redistgo"
)

func main() {
	platform := redistgo.Platform{
		N1: 200, N2: 100,
		T1: 10 * redistgo.Mbit, T2: 100 * redistgo.Mbit,
		Backbone: 1 * redistgo.Gbit,
	}
	k := platform.K()
	fmt.Printf("platform: %d+%d nodes, backbone %.0f Mbit/s -> k=%d, per-transfer %.0f Mbit/s\n",
		platform.N1, platform.N2, platform.Backbone/redistgo.Mbit, k,
		platform.Speed()/redistgo.Mbit)

	// A coupling boundary exchange: each sender ships three 2 MB slabs to
	// receivers chosen round-robin, as a regular mesh-partitioned
	// coupling does (equal-size slabs, every receiver gets six). Balance
	// is what makes 1-port scheduling shine on this asymmetric platform;
	// a pattern funneling most bytes into a few receivers would instead
	// favor letting those receivers' fat 100 Mbit cards multiplex many
	// slow senders at once — see DESIGN.md on the scope of the model.
	g := redistgo.NewGraph(platform.N1, platform.N2)
	for s := 0; s < platform.N1; s++ {
		for i := 0; i < 3; i++ {
			r := (s + i*67) % platform.N2
			g.AddEdge(s, r, int64(2*redistgo.MB))
		}
	}
	totalMB := float64(g.TotalWeight()) / redistgo.MB
	fmt.Printf("pattern: %d messages, %.0f MB total\n\n", g.EdgeCount(), totalMB)

	// β: a barrier across 300 nodes, ~5 ms, expressed in bytes-equivalent
	// (the schedule weighs edges in bytes).
	const betaSec = 0.005
	betaUnits := int64(betaSec * platform.Speed() / 8)

	ideal, err := redistgo.NewSimulator(redistgo.SimConfig{Platform: platform})
	if err != nil {
		log.Fatal(err)
	}
	tcp, err := redistgo.NewSimulator(redistgo.DefaultSimConfig(platform, 1))
	if err != nil {
		log.Fatal(err)
	}
	brute, err := tcp.BruteForce(redistgo.MatrixFlows(g.ToMatrix()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("brute-force TCP : %6.2f s\n", brute.Time)

	for _, alg := range []redistgo.Algorithm{redistgo.GGP, redistgo.OGGP} {
		sched, err := redistgo.Solve(g, k, betaUnits, redistgo.Options{Algorithm: alg})
		if err != nil {
			log.Fatal(err)
		}
		res, err := ideal.RunSteps(redistgo.FlowSteps(sched), betaSec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16v: %6.2f s  (%d steps, %.1f%% faster, ratio to LB %.4f)\n",
			alg, res.Time, res.Steps,
			100*(brute.Time-res.Time)/brute.Time,
			float64(sched.Cost())/float64(redistgo.LowerBound(g, k, betaUnits)))
	}
}

// Quickstart: schedule a small redistribution with OGGP and inspect the
// steps, cost and distance from the lower bound.
//
// The instance is in the spirit of the paper's Figure 2: a handful of
// messages, k = 3 simultaneous communications, setup delay β = 1. Note
// how the heavy message is preempted (split across steps) so that the
// backbone never idles.
package main

import (
	"fmt"
	"log"

	"redistgo"
)

func main() {
	// Traffic matrix: entry [i][j] = units of data node i of cluster C1
	// sends to node j of cluster C2.
	matrix := [][]int64{
		{8, 3, 0, 0},
		{4, 5, 0, 0},
		{0, 0, 5, 0},
		{0, 0, 2, 4},
	}
	g, err := redistgo.FromMatrix(matrix)
	if err != nil {
		log.Fatal(err)
	}

	const (
		k    = 3 // the backbone supports three simultaneous transfers
		beta = 1 // each synchronized step costs one time unit to set up
	)

	for _, alg := range []redistgo.Algorithm{redistgo.GGP, redistgo.OGGP} {
		sched, err := redistgo.Solve(g, k, beta, redistgo.Options{Algorithm: alg})
		if err != nil {
			log.Fatal(err)
		}
		if err := sched.Validate(g, k); err != nil {
			log.Fatal(err)
		}
		lb := redistgo.LowerBound(g, k, beta)
		fmt.Printf("=== %v ===\n", alg)
		fmt.Print(sched)
		fmt.Printf("lower bound %d -> evaluation ratio %.3f\n\n", lb,
			float64(sched.Cost())/float64(lb))
		fmt.Println(sched.Gantt(g.LeftCount()))
	}
}

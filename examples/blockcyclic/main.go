// Local block-cyclic redistribution: the paper's §2.4 case where the
// redistribution happens inside one parallel machine, the backbone is not
// a bottleneck and k = min(n1, n2). The pattern is the classic
// cyclic(r) -> cyclic(s) remapping of an array between two virtual
// processor grids (the block-cyclic literature the paper cites: [3], [9]).
package main

import (
	"fmt"
	"log"

	"redistgo"
)

func main() {
	const (
		elements  = 4 << 20 // 4M array elements
		elemBytes = 8       // float64
	)
	from := redistgo.BlockCyclicSpec{Procs: 8, Block: 64}
	to := redistgo.BlockCyclicSpec{Procs: 12, Block: 96}

	matrix, err := redistgo.BlockCyclicMatrix(elements, elemBytes, from, to)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cyclic(%d) on %d procs -> cyclic(%d) on %d procs, %d MB total\n",
		from.Block, from.Procs, to.Block, to.Procs,
		redistgo.MatrixTotal(matrix)>>20)

	g, err := redistgo.FromMatrix(matrix)
	if err != nil {
		log.Fatal(err)
	}
	k := from.Procs // min(n1, n2): every sender can be busy at once
	if to.Procs < k {
		k = to.Procs
	}

	// β: a fast local interconnect barrier is worth ~64 KB of transfer.
	const beta = 64 << 10
	for _, alg := range []redistgo.Algorithm{redistgo.OGGP, redistgo.MinSteps, redistgo.Greedy} {
		sched, err := redistgo.Solve(g, k, beta, redistgo.Options{Algorithm: alg})
		if err != nil {
			log.Fatal(err)
		}
		if err := sched.Validate(g, k); err != nil {
			log.Fatal(err)
		}
		lb := redistgo.LowerBound(g, k, beta)
		fmt.Printf("%-9v: %2d steps, duration %8.2f MB-equivalents, cost/LB %.4f\n",
			alg, sched.NumSteps(), float64(sched.TotalDuration())/(1<<20),
			float64(sched.Cost())/float64(lb))
	}

	fmt.Println("\nOGGP schedule consumes the pattern with full-bandwidth steps;")
	fmt.Println("MinSteps trades longer steps for the provably minimal step count.")
}

// Dynamic backbone (the paper's §6 future work): the shared backbone's
// available throughput drops mid-redistribution — another application
// started using the link. A schedule computed once with the initial k
// now oversubscribes the backbone and pays congestion; the adaptive
// driver re-plans every few steps with a k derived from the *current*
// capacity.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"redistgo"
)

func main() {
	const (
		nodes = 8
		nic   = 25 * redistgo.Mbit
		full  = 100 * redistgo.Mbit // k0 = 4
		half  = 50 * redistgo.Mbit  // k = 2 after the drop
	)
	rng := rand.New(rand.NewSource(7))
	matrix := redistgo.DenseUniformMatrix(rng, nodes, nodes,
		int64(2*redistgo.MB), int64(6*redistgo.MB))
	fmt.Printf("pattern: %dx%d all-pairs, %.0f MB total\n",
		nodes, nodes, float64(redistgo.MatrixTotal(matrix))/redistgo.MB)

	sim, err := redistgo.NewSimulator(redistgo.SimConfig{
		Platform: redistgo.Platform{N1: nodes, N2: nodes, T1: nic, T2: nic, Backbone: full},
		// Steps that oversubscribe the current capacity pay dearly.
		CongestionAlpha: 0.5,
		BackboneProfile: redistgo.Profile{
			{Duration: 5, Backbone: full},   // 5 s of full capacity...
			{Duration: 1e6, Backbone: half}, // ...then another app takes half
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	report, err := redistgo.RunAdaptive(matrix, sim, redistgo.AdaptiveConfig{
		NIC1: nic, NIC2: nic,
		BetaSec:      0.002,
		HorizonSteps: 4,
		Algorithm:    redistgo.OGGP,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nstatic schedule (k fixed at initial value): %6.2f s (%d steps)\n",
		report.StaticTime, report.StaticSteps)
	fmt.Printf("adaptive re-planning every 4 steps:         %6.2f s (%d rounds)\n",
		report.AdaptiveTime, len(report.Rounds))
	fmt.Printf("improvement: %.1f%%\n\n", 100*report.Improvement())

	fmt.Println("rounds (k follows the probed backbone capacity):")
	for i, r := range report.Rounds {
		fmt.Printf("  round %2d at t=%6.2fs: backbone %3.0f Mbit/s -> k=%d, %d steps, %.2fs\n",
			i+1, r.Start, r.Backbone/redistgo.Mbit, r.K, r.Steps, r.Duration)
	}
}

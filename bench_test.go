package redistgo_test

import (
	"math/rand"
	"testing"

	"redistgo"
	"redistgo/internal/experiments"
)

// The Benchmark* functions regenerate each figure of the paper's
// evaluation at reduced Monte-Carlo sample sizes (the paper used 100000
// runs per point; a benchmark iteration here uses a small sample so
// `go test -bench=.` completes in seconds). For publication-size samples
// use `go run ./cmd/redist-experiments -fig N -runs 100000`.

// BenchmarkFigure7 regenerates the paper's Figure 7: evaluation ratio vs
// k with small weights (U[1,20], β=1).
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := redistgo.Figure7Config(10, int64(i+1))
		cfg.Ks = []int{4, 16, 40}
		points, err := redistgo.RatioVsK(cfg)
		if err != nil {
			b.Fatal(err)
		}
		reportRatioShape(b, points, 2.3)
	}
}

// BenchmarkFigure8 regenerates Figure 8: ratio vs k with large weights
// (U[1,10000]) — communications far longer than β, ratios ≈ 1.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := redistgo.Figure8Config(10, int64(i+1))
		cfg.Ks = []int{4, 16, 40}
		points, err := redistgo.RatioVsK(cfg)
		if err != nil {
			b.Fatal(err)
		}
		reportRatioShape(b, points, 1.05)
	}
}

// BenchmarkFigure9 regenerates Figure 9: ratio vs β with small weights
// and random k.
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := redistgo.Figure9Config(10, int64(i+1))
		cfg.Betas = []int64{1, 64, 1024, 65536}
		points, err := redistgo.RatioVsBeta(cfg)
		if err != nil {
			b.Fatal(err)
		}
		reportRatioShape(b, points, 2.3)
	}
}

// BenchmarkFigure10 regenerates Figure 10: brute-force TCP vs GGP/OGGP on
// the k=3 testbed as message sizes grow.
func BenchmarkFigure10(b *testing.B) {
	benchmarkNetworkFigure(b, 3)
}

// BenchmarkFigure11 regenerates Figure 11: the same comparison at k=7.
func BenchmarkFigure11(b *testing.B) {
	benchmarkNetworkFigure(b, 7)
}

func benchmarkNetworkFigure(b *testing.B, k int) {
	for i := 0; i < b.N; i++ {
		cfg := redistgo.FigureNetworkConfig(k, 3, int64(i+1))
		cfg.NsMB = []float64{20, 60, 100}
		points, err := redistgo.NetworkExperiment(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			if p.GGPTime >= p.BruteAvg || p.OGGPTime >= p.BruteAvg {
				b.Fatalf("n=%g MB: scheduled (%.2f/%.2f s) not faster than brute force (%.2f s)",
					p.NMB, p.GGPTime, p.OGGPTime, p.BruteAvg)
			}
		}
		if i == 0 {
			last := points[len(points)-1]
			best := last.GGPTime
			if last.OGGPTime < best {
				best = last.OGGPTime
			}
			b.ReportMetric(100*(last.BruteAvg-best)/last.BruteAvg, "%gain")
		}
	}
}

func reportRatioShape(b *testing.B, points []redistgo.RatioPoint, maxAllowed float64) {
	b.Helper()
	var worst float64
	for _, p := range points {
		if p.GGPMax > worst {
			worst = p.GGPMax
		}
		if p.OGGPMax > worst {
			worst = p.OGGPMax
		}
		if p.GGPMax > maxAllowed || p.OGGPMax > maxAllowed {
			b.Fatalf("x=%g: ratios exceed %g: %+v", p.X, maxAllowed, p)
		}
	}
	b.ReportMetric(worst, "worst-ratio")
}

// --- Algorithm microbenchmarks (scaling of the contribution itself) ---

func benchmarkSolve(b *testing.B, alg redistgo.Algorithm, nodes, edges int) {
	rng := rand.New(rand.NewSource(1))
	g := redistgo.RandomGraph(rng, nodes, nodes, edges, 1, 20)
	k := nodes / 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := redistgo.Solve(g, k, 1, redistgo.Options{Algorithm: alg}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGGPSmall(b *testing.B)  { benchmarkSolve(b, redistgo.GGP, 20, 100) }
func BenchmarkGGPMedium(b *testing.B) { benchmarkSolve(b, redistgo.GGP, 40, 400) }
func BenchmarkGGPLarge(b *testing.B)  { benchmarkSolve(b, redistgo.GGP, 80, 1600) }

func BenchmarkOGGPSmall(b *testing.B)  { benchmarkSolve(b, redistgo.OGGP, 20, 100) }
func BenchmarkOGGPMedium(b *testing.B) { benchmarkSolve(b, redistgo.OGGP, 40, 400) }
func BenchmarkOGGPLarge(b *testing.B)  { benchmarkSolve(b, redistgo.OGGP, 80, 1600) }

func BenchmarkMinSteps(b *testing.B) { benchmarkSolve(b, redistgo.MinSteps, 40, 400) }
func BenchmarkGreedy(b *testing.B)   { benchmarkSolve(b, redistgo.Greedy, 40, 400) }

// BenchmarkSolve is the headline end-to-end benchmark of the incremental
// peeling engine: a fully dense 64x64 instance (4096 edges, every
// sender/receiver pair active), the worst case for the per-iteration
// rebuild cost the engine eliminates. internal/kpbs/alloc_test.go holds
// the matching old-vs-new comparison (BenchmarkPeelSolve ref/inc) that
// `make bench-compare` gates on.
func BenchmarkSolve(b *testing.B) {
	b.Run("GGP64x64dense", func(b *testing.B) { benchmarkSolve(b, redistgo.GGP, 64, 64*64) })
	b.Run("OGGP64x64dense", func(b *testing.B) { benchmarkSolve(b, redistgo.OGGP, 64, 64*64) })
}

// --- Ablation benches for the design choices DESIGN.md calls out ---

// BenchmarkAblationCoalesce measures the cost saved by the step-coalescing
// post-pass (an extension, off by default).
func BenchmarkAblationCoalesce(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g := redistgo.RandomGraph(rng, 30, 30, 200, 1, 20)
	var saved, base int64
	for i := 0; i < b.N; i++ {
		plain, err := redistgo.Solve(g, 8, 2, redistgo.Options{Algorithm: redistgo.GGP})
		if err != nil {
			b.Fatal(err)
		}
		merged, err := redistgo.Solve(g, 8, 2, redistgo.Options{Algorithm: redistgo.GGP, Coalesce: true})
		if err != nil {
			b.Fatal(err)
		}
		base = plain.Cost()
		saved = plain.Cost() - merged.Cost()
	}
	if base > 0 {
		b.ReportMetric(100*float64(saved)/float64(base), "%cost-saved")
	}
}

// BenchmarkAblationPack measures the step-packing post-pass (an
// extension, off by default): fragments of preempted messages fuse back
// together and node-disjoint steps merge, saving β per fusion.
func BenchmarkAblationPack(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	// Sparse instances are where peeling fragments the most.
	g := redistgo.RandomGraph(rng, 30, 30, 40, 1, 20)
	var saved, base int64
	for i := 0; i < b.N; i++ {
		plain, err := redistgo.Solve(g, 10, 2, redistgo.Options{Algorithm: redistgo.OGGP})
		if err != nil {
			b.Fatal(err)
		}
		packed, err := redistgo.Solve(g, 10, 2, redistgo.Options{Algorithm: redistgo.OGGP, Pack: true})
		if err != nil {
			b.Fatal(err)
		}
		base = plain.Cost()
		saved = plain.Cost() - packed.Cost()
	}
	if base > 0 {
		b.ReportMetric(100*float64(saved)/float64(base), "%cost-saved")
	}
}

// BenchmarkAblationLargeBeta compares GGP against the MinSteps extension
// when β dwarfs the weights — the regime MinSteps is designed for.
func BenchmarkAblationLargeBeta(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := redistgo.RandomGraph(rng, 30, 30, 200, 1, 20)
	const beta = 1000
	var ggpCost, minCost int64
	for i := 0; i < b.N; i++ {
		gg, err := redistgo.Solve(g, 8, beta, redistgo.Options{Algorithm: redistgo.GGP})
		if err != nil {
			b.Fatal(err)
		}
		ms, err := redistgo.Solve(g, 8, beta, redistgo.Options{Algorithm: redistgo.MinSteps})
		if err != nil {
			b.Fatal(err)
		}
		ggpCost, minCost = gg.Cost(), ms.Cost()
	}
	if ggpCost > 0 {
		b.ReportMetric(float64(minCost)/float64(ggpCost), "minsteps/ggp-cost")
	}
}

// BenchmarkAblationAsyncExecution compares barrier-synchronized
// execution against the weakened-barrier dependency DAG (§2.1's teased
// post-processing) on the paper's testbed workload.
func BenchmarkAblationAsyncExecution(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	k := 3
	platform := redistgo.PaperTestbed(k)
	matrix := redistgo.DenseUniformMatrix(rng, 10, 10, int64(1*redistgo.MB), int64(8*redistgo.MB))
	g, err := redistgo.FromMatrix(matrix)
	if err != nil {
		b.Fatal(err)
	}
	const betaSec = 0.002
	sched, err := redistgo.Solve(g, k, int64(betaSec*platform.Speed()/8), redistgo.Options{Algorithm: redistgo.OGGP})
	if err != nil {
		b.Fatal(err)
	}
	sim, err := redistgo.NewSimulator(redistgo.SimConfig{Platform: platform})
	if err != nil {
		b.Fatal(err)
	}
	var syncT, asyncT float64
	for i := 0; i < b.N; i++ {
		syncRes, err := sim.RunSteps(redistgo.FlowSteps(sched), betaSec)
		if err != nil {
			b.Fatal(err)
		}
		asyncRes, err := sim.RunAsync(redistgo.AsyncComms(sched.AsyncPlan()), k, betaSec)
		if err != nil {
			b.Fatal(err)
		}
		syncT, asyncT = syncRes.Time, asyncRes.Time
	}
	if syncT > 0 {
		b.ReportMetric(100*(syncT-asyncT)/syncT, "%time-saved-by-async")
	}
}

// BenchmarkExtensionAggregation regenerates the gateway-aggregation
// sweep (paper §6 future work 1): gain vs β crossover.
func BenchmarkExtensionAggregation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultAggregationConfig(10, int64(i+1))
		cfg.Betas = []int64{0, 64}
		points, err := experiments.AggregationSweep(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(100*points[len(points)-1].Improvement, "%gain-at-large-beta")
		}
	}
}

// BenchmarkExtensionAdaptive regenerates the adaptive-rescheduling sweep
// (paper §6 future work 2): gain vs backbone degradation depth.
func BenchmarkExtensionAdaptive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultAdaptiveSweepConfig(2, int64(i+1))
		cfg.Fractions = []float64{0.5}
		points, err := experiments.AdaptiveSweep(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(100*points[0].Improvement, "%gain-at-half-capacity")
		}
	}
}

// BenchmarkNetsimBruteForce measures the fluid engine on the paper's
// 10x10 all-pairs workload.
func BenchmarkNetsimBruteForce(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	matrix := redistgo.DenseUniformMatrix(rng, 10, 10, int64(10*redistgo.MB), int64(50*redistgo.MB))
	flows := redistgo.MatrixFlows(matrix)
	sim, err := redistgo.NewSimulator(redistgo.DefaultSimConfig(redistgo.PaperTestbed(3), 1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.BruteForce(flows); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBlockCyclicPattern measures the periodic block-cyclic pattern
// computation on a large array.
func BenchmarkBlockCyclicPattern(b *testing.B) {
	from := redistgo.BlockCyclicSpec{Procs: 16, Block: 64}
	to := redistgo.BlockCyclicSpec{Procs: 24, Block: 96}
	for i := 0; i < b.N; i++ {
		if _, err := redistgo.BlockCyclicMatrix(1<<30, 8, from, to); err != nil {
			b.Fatal(err)
		}
	}
}
